"""Public ≡_k API: decide k-round EF equivalence of words.

``equiv_k(w, v, k)`` is the paper's ``w ≡_k v`` — Duplicator has a winning
strategy for the k-round game on 𝔄_w and 𝔅_v.  Solvers are cached per
(word, word, alphabet) so repeated queries (different k, strategy
extraction) share the memo table.

Also provides the witness searches the experiments revolve around:

* :func:`distinguishing_rank` — the least k with ``w ≢_k v``;
* :func:`find_equivalent_unary_pair` — the minimal (p, q), p < q, with
  ``aᵖ ≡_k a^q`` (the executable face of Lemma 3.6).
"""

from __future__ import annotations

from functools import lru_cache

from repro.ef.solver import GameSolver
from repro import cachestats
from repro.fc.structures import word_structure

__all__ = [
    "solver_for",
    "equiv_k",
    "distinguishing_rank",
    "find_equivalent_unary_pair",
    "UnaryWitness",
]


def _infer_alphabet(w: str, v: str, alphabet: str | None) -> str:
    if alphabet is not None:
        return alphabet
    return "".join(sorted(set(w) | set(v)))


@lru_cache(maxsize=4096)
def solver_for(w: str, v: str, alphabet: str) -> GameSolver:
    """Cached :class:`GameSolver` for the pair (𝔄_w, 𝔅_v).

    Sized from the workload, not from memory pressure: the full engine
    DAG requests ~2 000 distinct pairs, dominated by E02's single-use
    short pairs.  At maxsize 512 those evicted the handful of expensive
    solvers (the a¹²b¹²-class heavyweights, re-requested by E06/E07/E15/
    E20), which were then rebuilt with their whole memo tables —
    2 087 misses vs 29 hits per ``BENCH_engine.json``.  4 096 holds the
    entire workload's key set, making every re-request a hit; the
    bench-smoke gate asserts the no-eviction regime
    (``benchmarks/bench_smoke.py::check_lru``).
    """
    return GameSolver(
        word_structure(w, alphabet), word_structure(v, alphabet)
    )


cachestats.register("ef.equivalence.solver_for", solver_for)


def equiv_k(w: str, v: str, k: int, alphabet: str | None = None) -> bool:
    """Decide ``w ≡_k v`` exactly (memoised game search).

    The alphabet defaults to the letters occurring in ``w`` or ``v``; pass
    it explicitly when the signature must contain additional constants
    (constants for absent letters are interpreted as ⊥ on both sides, which
    never separates two words, but being explicit keeps results
    reproducible).
    """
    if w == v:
        return True
    sigma = _infer_alphabet(w, v, alphabet)
    return solver_for(w, v, sigma).duplicator_wins(k)


def distinguishing_rank(
    w: str, v: str, max_k: int, alphabet: str | None = None
) -> int | None:
    """Return the least ``k ≤ max_k`` with ``w ≢_k v`` (``None`` if the
    words stay equivalent through ``max_k`` rounds).

    ``w ≡_0 v`` can already fail (the constant vectors alone may violate
    Definition 3.1, e.g. when exactly one word is empty), so the scan
    starts at 0.
    """
    if w == v:
        return None
    sigma = _infer_alphabet(w, v, alphabet)
    solver = solver_for(w, v, sigma)
    for k in range(max_k + 1):
        if not solver.duplicator_wins(k):
            return k
    return None


class UnaryWitness(tuple):
    """The minimal unary witness pair ``(p, q)`` with ``aᵖ ≡_k a^q``."""

    __slots__ = ()

    def __new__(cls, p: int, q: int):
        return super().__new__(cls, (p, q))

    @property
    def p(self) -> int:
        return self[0]

    @property
    def q(self) -> int:
        return self[1]


def find_equivalent_unary_pair(
    k: int,
    letter: str = "a",
    max_exponent: int = 64,
) -> UnaryWitness | None:
    """Search for the lexicographically minimal ``(p, q)``, ``p < q``, with
    ``letterᵖ ≡_k letter^q``.

    Lemma 3.6 guarantees such a pair exists for every k (because
    ``{a^{2ⁿ}}`` is not semi-linear); this function finds the smallest one
    below ``max_exponent`` by exact game solving — experiment E03 tabulates
    the result per k.  Returns ``None`` if no pair exists in range (which,
    for feasible k, only happens when ``max_exponent`` is too small).
    """
    for p in range(max_exponent):
        for q in range(p + 1, max_exponent + 1):
            if equiv_k(letter * p, letter * q, k, alphabet=letter):
                return UnaryWitness(p, q)
    return None
