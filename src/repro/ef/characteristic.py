"""Hintikka characteristic sentences for FC.

The second constructive ingredient of Ehrenfeucht's theorem: for every
word ``w`` and rank ``k`` there is a single FC(k) sentence ``χ^k_w`` — the
*characteristic sentence* — such that

    𝔅_v ⊨ χ^k_w   ⟺   𝔄_w ≡_k 𝔅_v.

Construction (standard, specialised to τ_Σ):

* ``χ⁰``: the conjunction of all atomic facts and negated atomic facts
  over the pebbled elements and the constants — the complete quantifier-
  free type of the position;
* ``χ^{k}``: ``(⋀_{a ∈ Facs(w)} ∃x χ^{k-1}_{ā·a}) ∧
  (∀x ⋁_{a ∈ Facs(w)} χ^{k-1}_{ā·a})`` — "every element type I have, you
  have, and you have no others".

Sizes are exponential in k, so this is a small-k tool (like the games it
mirrors); identical subformulas are deduplicated before conjoining.  The
tests validate the theorem directly: ``models(v, χ^k_w) == equiv_k(w, v, k)``
on word grids.
"""

from __future__ import annotations

from itertools import product

from repro.fc.structures import BOTTOM, WordStructure, word_structure
from repro.fc.syntax import (
    Concat,
    Const,
    EPSILON,
    Exists,
    Forall,
    Formula,
    Not,
    Term,
    Var,
    conjunction,
    disjunction,
)

__all__ = ["characteristic_sentence"]


def _position_terms(
    structure: WordStructure, count: int
) -> tuple[list[Term], list]:
    """Pebble variables x0…x_{count-1} followed by the constants."""
    terms: list[Term] = [Var(f"c{i}") for i in range(count)]
    values: list = []
    for letter in structure.alphabet:
        terms.append(Const(letter))
    terms.append(EPSILON)
    return terms, values


def _quantifier_free_type(
    structure: WordStructure, elements: tuple
) -> Formula:
    """The complete atomic type of (elements, constants) in ``structure``.

    Uses only concatenation atoms: equality is ``x ≐ y·ε`` and constant
    identification is subsumed by equalities with constant terms, so the
    conjunction pins the full Definition 3.1 pattern.
    """
    terms, _ = _position_terms(structure, len(elements))
    values = list(elements) + list(structure.constants_vector())
    literals: list[Formula] = []
    seen: set = set()
    n = len(terms)
    for i, j, k in product(range(n), repeat=3):
        atom = Concat(terms[i], terms[j], terms[k])
        if atom in seen:
            continue
        seen.add(atom)
        holds = (
            values[i] is not BOTTOM
            and values[j] is not BOTTOM
            and values[k] is not BOTTOM
            and values[i] == values[j] + values[k]
            and structure.contains(values[i])
        )
        literals.append(atom if holds else Not(atom))
    return conjunction(literals)


def _characteristic(
    structure: WordStructure, elements: tuple, k: int
) -> Formula:
    if k == 0:
        return _quantifier_free_type(structure, elements)
    fresh = Var(f"c{len(elements)}")
    children: list[Formula] = []
    seen: set = set()
    for element in sorted(structure.universe_factors):
        child = _characteristic(structure, elements + (element,), k - 1)
        if child not in seen:
            seen.add(child)
            children.append(child)
    forward = conjunction([Exists(fresh, child) for child in children])
    backward = Forall(fresh, disjunction(children))
    return forward & backward


def characteristic_sentence(w: str, k: int, alphabet: str) -> Formula:
    """Return ``χ^k_w``: the rank-k characteristic sentence of ``w``.

    ``models(v, χ^k_w, alphabet)`` holds exactly when ``w ≡_k v`` —
    validated against the game solver in the tests.  Formula size is
    O(|Facs(w)|^k · poly), so keep ``k ≤ 2`` and words short.
    """
    if k < 0:
        raise ValueError(f"negative rank: {k}")
    structure = word_structure(w, alphabet)
    return _characteristic(structure, (), k)
