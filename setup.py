"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (pip install -e . falls back to setup.py develop)."""
from setuptools import setup

setup()
