"""Seeded-violation and clean-pass fixtures for the domains.* rules."""

from repro.analysis.domainrules import (
    DomainsBitsetUniverseChecker,
    DomainsNoCrossMixChecker,
    DomainsSlotDisciplineChecker,
    DomainsUniverseEscapeChecker,
)

from tests.analysis.test_domains import BITSET
from tests.analysis.util import build


def findings_of(checker, tmp_path, files, **overrides):
    overrides.setdefault("bitset_modules", ("fixpkg.low.bits",))
    codebase, config = build(tmp_path, files, **overrides)
    return list(checker.check(codebase, config))


# -- domains.no-cross-mix ----------------------------------------------------


def test_comparing_ids_across_domains_is_flagged(tmp_path):
    found = findings_of(DomainsNoCrossMixChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=intern:sweep] the gid mint
            def gid(text):
                return 0


            # repro-lint: domain[returns=interval] the interval mint
            def fid(i, j):
                return 0


            def broken(text, i, j):
                return gid(text) == fid(i, j)
            """,
    })
    assert len(found) == 1
    assert "compares a intern:sweep id with a interval id" in found[0].message
    assert "broken" in found[0].message


def test_comparing_ids_inside_one_domain_passes(tmp_path):
    found = findings_of(DomainsNoCrossMixChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=intern:sweep] the gid mint
            def gid(text):
                return 0


            def fine(left, right):
                return gid(left) == gid(right)
            """,
    })
    assert found == []


def test_argument_against_declared_param_is_flagged(tmp_path):
    found = findings_of(DomainsNoCrossMixChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=interval] the interval mint
            def fid(i, j):
                return 0


            # repro-lint: domain[gid=intern:sweep] reads the intern table
            def lookup(gid):
                return gid


            def broken(i, j):
                return lookup(fid(i, j))
            """,
    })
    assert len(found) == 1
    assert "passes a interval id" in found[0].message
    assert "gid=intern:sweep" in found[0].message


def test_malformed_pin_is_a_no_cross_mix_finding(tmp_path):
    found = findings_of(DomainsNoCrossMixChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[banana] a typo'd declaration
            VALUE = 3
            """,
    })
    assert len(found) == 1
    assert "malformed domain pin 'banana'" in found[0].message
    assert "pin grammar" in found[0].hint


# -- domains.bitset-universe -------------------------------------------------


def test_mask_algebra_across_tables_is_flagged(tmp_path):
    found = findings_of(DomainsBitsetUniverseChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=bitset-universe:alpha] alpha mask
            def alpha_mask():
                return 3


            # repro-lint: domain[returns=bitset-universe:beta] beta mask
            def beta_mask():
                return 5


            def broken():
                return alpha_mask() & beta_mask()
            """,
    })
    assert len(found) == 1
    assert "bitset-universe:alpha" in found[0].message
    assert "bitset-universe:beta" in found[0].message


def test_mask_algebra_over_one_table_passes(tmp_path):
    found = findings_of(DomainsBitsetUniverseChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=bitset-universe:alpha] alpha mask
            def alpha_mask():
                return 3


            def fine():
                return alpha_mask() & alpha_mask()
            """,
    })
    assert found == []


# -- domains.universe-escape -------------------------------------------------

# The PR-4 sweep bug, replicated in miniature: a quantifier scan builds
# its candidate pool from pure producers (ids minted over the family's
# whole intern table) and witnesses ids without first intersecting with
# the current word's member mask — candidates that are not factors of
# the word escape into the result.
POOL_ESCAPE = {
    "fixpkg/low/bits.py": BITSET,
    "fixpkg/low/sweepish.py": """\
        from fixpkg.low import bits


        class Family:
            # repro-lint: domain[returns=intern:sweep] the family mint
            def intern(self, text):
                return len(text)


        class Table:
            # repro-lint: domain[mask=bitset-universe:sweep] member mask
            def __init__(self, mask):
                self.mask = mask  # repro-lint: domain[bitset-universe:sweep] the word's factor set


        def pool_for(family: Family, words):
            mask = 0
            for word in words:
                mask |= 1 << family.intern(word)
            return mask


        def quantifier_scan(family: Family, table: Table, words):
            pool = pool_for(family, words)
            return list(bits.iter_ids(pool))
        """,
}


def test_pr4_pool_escape_replica_is_flagged(tmp_path):
    found = findings_of(DomainsUniverseEscapeChecker(), tmp_path, POOL_ESCAPE)
    assert len(found) == 1
    assert "quantifier_scan" in found[0].message
    assert "bitset-pool:sweep" in found[0].message
    assert "bitset-universe:sweep" in found[0].message


def test_pool_intersected_with_member_mask_passes(tmp_path):
    fixed = dict(POOL_ESCAPE)
    fixed["fixpkg/low/sweepish.py"] = fixed["fixpkg/low/sweepish.py"].replace(
        "return list(bits.iter_ids(pool))",
        "return list(bits.iter_ids(pool & table.mask))",
    )
    found = findings_of(DomainsUniverseEscapeChecker(), tmp_path, fixed)
    assert found == []


# -- domains.slot-discipline -------------------------------------------------

SLOT_FILES = {
    "fixpkg/low/base.py": """\
        class Ctx:
            def __init__(self, n):
                self.env = [None] * n  # repro-lint: domain[map[slot, intern:sweep]] relation environment


        # repro-lint: domain[returns=slot] the slot mint
        def slot_of(name):
            return 0


        def broken(ctx: Ctx, code):
            return ctx.env[code]


        def fine(ctx: Ctx, name):
            return ctx.env[slot_of(name)]
        """,
}


def test_plain_index_into_slot_map_is_flagged(tmp_path):
    found = findings_of(DomainsSlotDisciplineChecker(), tmp_path, SLOT_FILES)
    assert len(found) == 1
    assert "broken" in found[0].message
    assert "map[slot, ...]" in found[0].message
    assert "fine" not in found[0].message


def test_slot_typed_index_passes(tmp_path):
    found = findings_of(DomainsSlotDisciplineChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class Ctx:
                def __init__(self, n):
                    self.env = [None] * n  # repro-lint: domain[map[slot, intern:sweep]] relation environment


            # repro-lint: domain[returns=slot] the slot mint
            def slot_of(name):
                return 0


            def fine(ctx: Ctx, name):
                return ctx.env[slot_of(name)]
            """,
    })
    assert found == []


# -- scoping -----------------------------------------------------------------


def test_domain_modules_scopes_the_findings(tmp_path):
    files = {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=intern:sweep] the gid mint
            def gid(text):
                return 0


            # repro-lint: domain[returns=interval] the interval mint
            def fid(i, j):
                return 0


            def broken(text, i, j):
                return gid(text) == fid(i, j)
            """,
    }
    scoped = findings_of(
        DomainsNoCrossMixChecker(),
        tmp_path,
        files,
        domain_modules=("fixpkg.mid",),
    )
    assert scoped == []
