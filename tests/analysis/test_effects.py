"""Fixed-point effect inference over fixture packages."""

from repro.analysis.effects import EffectAnalysis

from tests.analysis.util import build


def analyse(tmp_path, files, **overrides):
    codebase, config = build(tmp_path, files, **overrides)
    return EffectAnalysis(codebase, config)


def summary(analysis, qualname):
    return sorted(analysis.summaries[qualname])


def test_pure_io_and_nondeterministic_seeds(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            import random


            def double(x):
                return 2 * x


            def report(x):
                print(x)


            def roll():
                return random.random()
            """,
    })
    assert summary(analysis, "fixpkg.low.base.double") == []
    assert summary(analysis, "fixpkg.low.base.report") == ["io"]
    assert summary(analysis, "fixpkg.low.base.roll") == [
        "nondeterministic"
    ]


def test_effects_propagate_through_call_chains(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            def leaf():
                print("hi")


            def middle():
                return leaf()


            def top():
                return middle()
            """,
    })
    assert summary(analysis, "fixpkg.low.base.top") == ["io"]
    chain = analysis.explain("fixpkg.low.base.top", "io")
    assert len(chain) == 3  # top → middle → leaf's print seed
    assert "print" in chain[-1]


def test_param_indexed_mutation_absorbed_by_fresh_argument(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            def push(acc, x):
                acc.append(x)


            def collect(items):
                out = []
                for item in items:
                    push(out, item)
                return out


            def taint(items):
                push(items, 1)
            """,
    })
    assert summary(analysis, "fixpkg.low.base.push") == ["mutates-arg:acc"]
    # A fresh local absorbs the callee's parameter mutation...
    assert summary(analysis, "fixpkg.low.base.collect") == []
    # ...while forwarding an own parameter re-indexes the atom.
    assert summary(analysis, "fixpkg.low.base.taint") == [
        "mutates-arg:items"
    ]


def test_mutates_self_translation_by_receiver(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            SHARED = []


            class Acc:
                def bump(self):
                    self.n = 1


            def on_fresh():
                Acc().bump()


            def on_param(acc: Acc):
                acc.bump()


            def on_module():
                SHARED.append(1)
            """,
    })
    assert summary(analysis, "fixpkg.low.base.Acc.bump") == ["mutates-self"]
    assert summary(analysis, "fixpkg.low.base.on_fresh") == []
    assert summary(analysis, "fixpkg.low.base.on_param") == [
        "mutates-arg:acc"
    ]
    assert summary(analysis, "fixpkg.low.base.on_module") == [
        "mutates-global"
    ]


def test_reads_global_mutable(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            CACHE = {}


            def poke(k, v):
                CACHE[k] = v


            def peek(k):
                return CACHE.get(k)
            """,
    })
    # The subscript store both writes and reads the module-level dict.
    assert summary(analysis, "fixpkg.low.base.poke") == [
        "mutates-global", "reads-global-mutable",
    ]
    assert "reads-global-mutable" in summary(
        analysis, "fixpkg.low.base.peek"
    )


def test_declared_summary_pins_inference(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: effects[pure] callback is contractually pure
            def apply(f, x):
                return f(x)


            def user(x):
                return apply(abs, x)
            """,
    })
    assert summary(analysis, "fixpkg.low.base.apply") == []
    assert summary(analysis, "fixpkg.low.base.user") == []


def test_counter_modules_carry_declared_counter(tmp_path):
    analysis = analyse(
        tmp_path,
        {
            "fixpkg/low/stats.py": """\
                TALLY = {}


                def record(name):
                    TALLY[name] = TALLY.get(name, 0) + 1
                """,
            "fixpkg/low/base.py": """\
                from fixpkg.low import stats


                def work(x):
                    stats.record("work")
                    return x
                """,
        },
        counter_modules=("fixpkg.low.stats",),
    )
    assert summary(analysis, "fixpkg.low.stats.record") == ["counter"]
    assert summary(analysis, "fixpkg.low.base.work") == ["counter"]


def test_summary_payload_is_sorted_and_totalled(tmp_path):
    analysis = analyse(tmp_path, {
        "fixpkg/low/base.py": """\
            def a():
                return 1


            def b(out):
                out.append(1)
            """,
    })
    payload = analysis.summary_payload()
    names = [f["function"] for f in payload["functions"]]
    assert names == sorted(names)
    assert payload["totals"]["pure"] >= 1
    assert payload["totals"]["mutates-arg"] == 1
