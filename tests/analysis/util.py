"""Shared helpers for the lint-suite tests.

Fixture packages are written to ``tmp_path`` at test time (never
collected by pytest or ruff), so each test seeds exactly the violations
it asserts on and nothing else.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.framework import Codebase, LintConfig


def write_package(root: Path, files: dict[str, str]) -> Path:
    """Write dedented sources under ``root``, auto-creating __init__.py."""
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    for directory in {path.parent for path in root.rglob("*.py")}:
        init = directory / "__init__.py"
        if directory != root and not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def fixture_config(root: Path, **overrides) -> LintConfig:
    """A LintConfig describing the ``fixpkg`` fixture layout."""
    settings = dict(
        src_root=root,
        package="fixpkg",
        layers=(("low",), ("mid",), ("high",)),
        leaf_modules=("fixpkg.leaf",),
        unconstrained_modules=("fixpkg", "fixpkg.__main__"),
        hierarchies={"fixpkg.mid.syntax.Node": "fixpkg.mid.syntax"},
        dispatch_prefixes=("fixpkg.mid", "fixpkg.high"),
        syntax_modules=("fixpkg.mid.syntax",),
        determinism_prefixes=("fixpkg.high",),
        registry_builder=None,
    )
    settings.update(overrides)
    return LintConfig(**settings)


def build(tmp_path: Path, files: dict[str, str], **overrides):
    """(codebase, config) for a fixture package seeded with ``files``."""
    root = write_package(tmp_path / "src", files)
    return Codebase(root, "fixpkg"), fixture_config(root, **overrides)


def line_of(codebase: Codebase, relpath: str, needle: str) -> int:
    """1-based line of the first source line containing ``needle``."""
    module = codebase.module_for_path(relpath)
    assert module is not None, f"no module at {relpath}"
    for number, text in enumerate(module.lines, start=1):
        if needle in text:
            return number
    raise AssertionError(f"{needle!r} not found in {relpath}")
