"""Seeded violations for the dispatch-exhaustiveness rule."""

from repro.analysis.dispatch import DispatchExhaustivenessChecker

from tests.analysis.util import build, line_of

SYNTAX = """\
    class Node:
        pass

    class Leaf(Node):
        pass

    class Pair(Node):
        pass

    class Wrap(Node):
        pass
    """


def run(tmp_path, walker_source):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/mid/syntax.py": SYNTAX,
            "fixpkg/mid/walker.py": walker_source,
        },
    )
    findings = list(DispatchExhaustivenessChecker().check(codebase, config))
    return codebase, findings


def test_missing_arm_is_flagged_at_chain_start(tmp_path):
    codebase, findings = run(
        tmp_path,
        """\
        from fixpkg.mid.syntax import Leaf, Node, Pair


        def bad(node: Node) -> int:
            if isinstance(node, Leaf):
                return 1
            elif isinstance(node, Pair):
                return 2
        """,
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "dispatch-exhaustiveness"
    assert finding.path == "fixpkg/mid/walker.py"
    assert finding.line == line_of(
        codebase, "fixpkg/mid/walker.py", "if isinstance(node, Leaf)"
    )
    assert "bad()" in finding.message
    assert "Wrap" in finding.message


def test_else_catchall_is_exhaustive(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        from fixpkg.mid.syntax import Leaf, Node, Pair


        def good(node: Node) -> int:
            if isinstance(node, Leaf):
                return 1
            elif isinstance(node, Pair):
                return 2
            else:
                raise TypeError(node)
        """,
    )
    assert findings == []


def test_trailing_statement_is_a_catchall(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        from fixpkg.mid.syntax import Leaf, Node, Pair


        def good(node: Node) -> int:
            if isinstance(node, Leaf):
                return 1
            elif isinstance(node, Pair):
                return 2
            return 0
        """,
    )
    assert findings == []


def test_tuple_arms_cover_the_hierarchy(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        from fixpkg.mid.syntax import Leaf, Node, Pair, Wrap


        def good(node: Node) -> int:
            if isinstance(node, Leaf):
                return 1
            elif isinstance(node, (Pair, Wrap)):
                return 2
        """,
    )
    assert findings == []


def test_single_membership_test_is_not_a_dispatch(tmp_path):
    # One isinstance arm is a guard, not a dispatch chain.
    _, findings = run(
        tmp_path,
        """\
        from fixpkg.mid.syntax import Leaf, Node


        def guard(node: Node) -> bool:
            if isinstance(node, Leaf):
                return True
        """,
    )
    assert findings == []


def test_extension_subclass_elsewhere_is_not_required(tmp_path):
    # A subclass declared outside the home module is a protocol-based
    # extension point, not a required dispatch arm.
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/mid/syntax.py": SYNTAX,
            "fixpkg/high/ext.py": """\
                from fixpkg.mid.syntax import Node


                class Extension(Node):
                    pass
                """,
            "fixpkg/mid/walker.py": """\
                from fixpkg.mid.syntax import Leaf, Node, Pair, Wrap


                def good(node: Node) -> int:
                    if isinstance(node, Leaf):
                        return 1
                    elif isinstance(node, (Pair, Wrap)):
                        return 2
                """,
        },
    )
    findings = list(DispatchExhaustivenessChecker().check(codebase, config))
    assert findings == []
