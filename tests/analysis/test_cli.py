"""Exit codes and report output of ``python -m repro lint``."""

import argparse
import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import repro.analysis.cli as cli_module
from repro.analysis.cli import cmd_lint

from tests.analysis.util import build

REPO_ROOT = Path(__file__).resolve().parents[2]

SEEDED = {
    "fixpkg/high/solver.py": """\
        import time


        def stamp():
            return time.time()
        """,
}

CLEAN = {"fixpkg/low/base.py": "VALUE = 1\n"}


def namespace(**overrides) -> argparse.Namespace:
    settings = dict(
        rule=None,
        json_path=None,
        effects_json_path=None,
        domains_json_path=None,
        rule_fixture_dir=None,
        baseline=None,
        write_baseline=False,
        update_lock=False,
        list_rules=False,
    )
    settings.update(overrides)
    return argparse.Namespace(**settings)


def point_at(monkeypatch, config):
    monkeypatch.setattr(cli_module, "default_config", lambda: config)


def test_seeded_fixture_exits_nonzero(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, SEEDED)
    point_at(monkeypatch, config)
    assert cmd_lint(namespace()) == 1
    out = capsys.readouterr().out
    assert "wall-clock read time.time()" in out
    assert out.startswith("fixpkg/high/solver.py:")


def test_clean_fixture_exits_zero(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, CLEAN)
    point_at(monkeypatch, config)
    assert cmd_lint(namespace()) == 0
    assert "ok: 0 finding(s)" in capsys.readouterr().out


def test_unknown_rule_exits_two(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, CLEAN)
    point_at(monkeypatch, config)
    assert cmd_lint(namespace(rule=["no-such-rule"])) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_json_report_is_written(tmp_path, monkeypatch):
    _, config = build(tmp_path, SEEDED)
    point_at(monkeypatch, config)
    report = tmp_path / "lint-report.json"
    assert cmd_lint(namespace(json_path=str(report))) == 1
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert payload["summary"]["findings"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "determinism"
    assert finding["path"] == "fixpkg/high/solver.py"
    assert finding["fingerprint"].startswith("determinism::")


def test_json_report_is_fingerprint_sorted_with_rule_metadata(
    tmp_path, monkeypatch
):
    seeded = dict(SEEDED)
    seeded["fixpkg/high/other.py"] = """\
        import time


        def later():
            return time.time_ns()
        """
    _, config = build(tmp_path, seeded)
    point_at(monkeypatch, config)
    report = tmp_path / "lint-report.json"
    assert cmd_lint(namespace(json_path=str(report))) == 1
    payload = json.loads(report.read_text(encoding="utf-8"))
    fingerprints = [f["fingerprint"] for f in payload["findings"]]
    assert fingerprints == sorted(fingerprints) and len(fingerprints) == 2
    rules = payload["rules"]
    assert [r["name"] for r in rules] == sorted(r["name"] for r in rules)
    assert all(r["description"] for r in rules)
    assert {"determinism", "effects.purity-propagation"} <= {
        r["name"] for r in rules
    }


def test_rule_glob_selects_effects_family(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, SEEDED)
    point_at(monkeypatch, config)
    # The seeded wall-clock violation is a determinism finding, so the
    # effects-only run passes while the full run fails.
    assert cmd_lint(namespace(rule=["effects.*"])) == 0
    assert "4 rule(s)" in capsys.readouterr().out


def test_effects_json_dump(tmp_path, monkeypatch):
    _, config = build(
        tmp_path,
        {
            "fixpkg/high/calc.py": """\
                def double(x):
                    return 2 * x


                def record(log, x):
                    log.append(x)
                    return x
                """,
        },
    )
    point_at(monkeypatch, config)
    dump = tmp_path / "effects.json"
    assert cmd_lint(namespace(effects_json_path=str(dump))) == 0
    payload = json.loads(dump.read_text(encoding="utf-8"))
    by_name = {f["function"]: f for f in payload["functions"]}
    assert by_name["fixpkg.high.calc.double"]["pure"] is True
    assert by_name["fixpkg.high.calc.record"]["effects"] == [
        "mutates-arg:log"
    ]
    assert payload["totals"]["functions"] == len(payload["functions"])
    assert payload["totals"]["mutates-arg"] == 1


def test_domains_json_dump(tmp_path, monkeypatch):
    _, config = build(
        tmp_path,
        {
            "fixpkg/high/ids.py": """\
                # repro-lint: domain[returns=intern:demo] the mint
                def intern(text):
                    return 0


                def consumer():
                    return intern("ab")
                """,
        },
    )
    point_at(monkeypatch, config)
    dump = tmp_path / "domains.json"
    assert cmd_lint(namespace(domains_json_path=str(dump))) == 0
    payload = json.loads(dump.read_text(encoding="utf-8"))
    assert payload["pins"] == 1
    assert payload["pin_errors"] == []
    by_name = {f["function"]: f for f in payload["functions"]}
    assert by_name["fixpkg.high.ids.intern"]["returns"] == "intern:demo"
    # The consumer's return domain is inferred, not pinned.
    assert by_name["fixpkg.high.ids.consumer"]["returns"] == "intern:demo"


def test_check_rule_fixtures_passes_on_this_repo(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, CLEAN)
    config = dataclasses.replace(config, src_root=REPO_ROOT / "src")
    point_at(monkeypatch, config)
    assert cmd_lint(namespace(rule_fixture_dir="")) == 0
    assert "every rule has a fixture test" in capsys.readouterr().out


def test_check_rule_fixtures_flags_untested_rules(
    tmp_path, monkeypatch, capsys
):
    _, config = build(tmp_path, CLEAN)
    point_at(monkeypatch, config)
    empty = tmp_path / "no-tests"
    empty.mkdir()
    assert cmd_lint(namespace(rule_fixture_dir=str(empty))) == 1
    err = capsys.readouterr().err
    assert "has no fixture test" in err
    assert "domains.universe-escape" in err


def test_baseline_roundtrip(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, SEEDED)
    point_at(monkeypatch, config)
    baseline = tmp_path / "baseline.json"
    assert cmd_lint(
        namespace(write_baseline=True, baseline=str(baseline))
    ) == 0
    capsys.readouterr()
    assert cmd_lint(namespace(baseline=str(baseline))) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_list_rules(tmp_path, monkeypatch, capsys):
    _, config = build(tmp_path, CLEAN)
    point_at(monkeypatch, config)
    assert cmd_lint(namespace(list_rules=True)) == 0
    out = capsys.readouterr().out
    for rule in (
        "cache-soundness",
        "concurrency.atomic-counters",
        "concurrency.fork-safety",
        "concurrency.guarded-by",
        "concurrency.shared-state-race",
        "determinism",
        "dispatch-exhaustiveness",
        "domains.bitset-universe",
        "domains.no-cross-mix",
        "domains.slot-discipline",
        "domains.universe-escape",
        "effects.assignment-purity",
        "effects.memo-key-completeness",
        "effects.purity-propagation",
        "effects.worker-isolation",
        "frozen-ast",
        "import-layering",
        "lru-cache-purity",
    ):
        assert rule in out


def test_repo_head_is_lint_clean():
    """The committed tree itself must pass `python -m repro lint`."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ok: 0 finding(s)" in result.stdout
