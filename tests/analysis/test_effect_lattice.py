"""Pinned effect summaries for representative repository functions.

These are regression anchors for the fixed-point inference: if a
refactor changes what the analyzer believes about one of these
functions, this table fails loudly and the diff below documents what
moved.  Picked to span the lattice — pure leaves, counter-only solver
entry points, self-interning memo owners, per-parameter mutation, and
io at the cache boundary.
"""

import pytest

from repro.analysis.effects import EffectAnalysis
from repro.analysis.framework import Codebase, default_config


@pytest.fixture(scope="module")
def analysis():
    config = default_config()
    return EffectAnalysis(Codebase(config.src_root, config.package), config)


PINNED = {
    # words/: the combinatorial base layer is pure throughout.
    "repro.words.factors.factors": [],
    "repro.words.periodicity.smallest_period": [],
    "repro.words.primitivity.primitive_root": [],
    # kernel/: interning is counter-accounted, hydrates via the store
    # channel, and families self-intern.
    "repro.kernel.interning.LazyCat.point": [],
    "repro.kernel.interning.intern_table": ["counter", "store"],
    "repro.kernel.stats.record": ["counter"],
    "repro.kernel.sweep.SweepFamily._merge": [],
    "repro.kernel.sweep.SweepFamily.intern": ["mutates-self"],
    "repro.kernel.sweep.SweepFamily._extend": ["counter", "mutates-self"],
    "repro.kernel.efcore.KernelSolver._mirror": [],
    "repro.kernel.efcore.KernelSolver._spoiler_moves": [],
    "repro.kernel.efcore.KernelSolver.duplicator_wins": [
        "counter", "mutates-self",
    ],
    # fc/: structures are pure views; sweep programs self-memoise.
    "repro.fc.builders.phi_ww": [],
    "repro.fc.structures.WordStructure.constant": [],
    "repro.fc.sweep._WordView.constant": [],
    "repro.fc.sweep.SweepProgram._filter_ok": ["mutates-self", "unknown"],
    "repro.fc.sweep.SweepProgram._flatten": [
        "mutates-arg:out", "mutates-self", "unknown",
    ],
    # foeq/: per-parameter mutation tracking keeps the lru-cached
    # position_program transitively pure even though its helpers
    # mutate their accumulator arguments.
    "repro.foeq.compiled.position_program": [],
    "repro.foeq.compiled.PositionProgram._flatten": [
        "mutates-arg:out", "mutates-self",
    ],
    "repro.foeq.compiled.PositionProgram._eval": [
        "mutates-arg:sigma", "mutates-arg:state",
    ],
    "repro.foeq.semantics.p_evaluate": ["mutates-arg:assignment"],
    "repro.foeq.games.PositionGameSolver._wins": [
        "counter", "mutates-self",
    ],
    # ef/ and engine/: solver memo owners (persisting their memo through
    # the store channel) and the io cache boundary.
    "repro.ef.solver.GameSolver.duplicator_wins": [
        "counter", "mutates-self", "store",
    ],
    # store/: the channel itself is declared, its codecs infer pure.
    "repro.store.runtime.load": ["store"],
    "repro.store.artifacts.fingerprint_strings": [],
    "repro.store.artifacts.encode_memo": [],
    "repro.engine.spec.canonical_json": [],
    "repro.engine.spec.TaskRegistry.register": ["mutates-self"],
    "repro.engine.cache.ResultCache.store": [
        "io", "mutates-self", "unknown",
    ],
}


@pytest.mark.parametrize("qualname", sorted(PINNED))
def test_pinned_summary(analysis, qualname):
    assert qualname in analysis.summaries, f"{qualname} not analysed"
    assert sorted(analysis.summaries[qualname]) == PINNED[qualname]


def test_every_function_has_a_summary(analysis):
    assert set(analysis.summaries) == set(analysis.graph.functions)


def test_counter_modules_are_declared_counter(analysis):
    for qualname, info in analysis.graph.functions.items():
        if info.module in analysis.config.counter_modules:
            assert analysis.summaries[qualname] == frozenset({"counter"})


def test_store_modules_are_declared_store(analysis):
    seen = 0
    for qualname, info in analysis.graph.functions.items():
        if info.module in analysis.config.store_modules:
            assert analysis.summaries[qualname] == frozenset({"store"})
            seen += 1
    assert seen > 0, "store modules missing from the analysed codebase"
