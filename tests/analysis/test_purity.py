"""Seeded violations for the lru-cache-purity rule."""

from repro.analysis.purity import LruCachePurityChecker

from tests.analysis.util import build, line_of


def run(tmp_path, source):
    codebase, config = build(tmp_path, {"fixpkg/low/caches.py": source})
    return codebase, list(LruCachePurityChecker().check(codebase, config))


def test_mutable_default_is_flagged(tmp_path):
    codebase, findings = run(
        tmp_path,
        """\
        from functools import lru_cache


        @lru_cache(maxsize=8)
        def impure(x, acc=[]):
            acc.append(x)
            return tuple(acc)
        """,
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "lru-cache-purity"
    assert "impure() has a mutable default argument" in finding.message
    assert finding.line == line_of(
        codebase, "fixpkg/low/caches.py", "def impure(x, acc=[])"
    )


def test_global_statement_is_flagged(tmp_path):
    codebase, findings = run(
        tmp_path,
        """\
        from functools import lru_cache

        _COUNT = 0


        @lru_cache(maxsize=8)
        def counting(x):
            global _COUNT
            _COUNT += 1
            return x
        """,
    )
    assert len(findings) == 1
    assert "declares global _COUNT" in findings[0].message
    assert findings[0].line == line_of(
        codebase, "fixpkg/low/caches.py", "global _COUNT"
    )


def test_nested_definition_is_flagged(tmp_path):
    codebase, findings = run(
        tmp_path,
        """\
        from functools import lru_cache


        def outer(bias):
            @lru_cache(maxsize=8)
            def inner(y):
                return y + bias

            return inner
        """,
    )
    assert len(findings) == 1
    assert "inner() is defined inside another function" in findings[0].message
    assert findings[0].line == line_of(
        codebase, "fixpkg/low/caches.py", "def inner(y)"
    )


def test_pure_site_is_clean(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        from functools import lru_cache


        @lru_cache(maxsize=8)
        def pure(x, suffix=()):
            return (x, *suffix)
        """,
    )
    assert findings == []


def test_uncached_functions_are_ignored(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        def plain(x, acc=[]):
            acc.append(x)
            return acc
        """,
    )
    assert findings == []
