"""Seeded-violation and clean-pass fixtures for the concurrency.* rules.

Each rule gets a fixture package that reproduces a real bug shape —
including the three pre-fix daemon races this rule family was built to
catch (the ``begin_shutdown`` check-then-set on ``_stopping``, the
``stats.record`` counter increment, and the ``runtime.activate`` global
swap) — plus a clean twin showing the accepted discipline.
"""

from repro.analysis.concurrency import (
    AtomicCountersChecker,
    ForkSafetyChecker,
    GuardedByChecker,
    SharedStateRaceChecker,
)

from tests.analysis.util import build


def findings_of(checker, tmp_path, files, **overrides):
    codebase, config = build(tmp_path, files, **overrides)
    return list(checker.check(codebase, config))


# -- concurrency.shared-state-race -------------------------------------------


DAEMON_ROOTS = dict(
    thread_roots=("fixpkg.high.daemon.Server.handle",),
    thread_shared_classes=("fixpkg.high.daemon.Server",),
)

#: The pre-fix ``ReproServer.begin_shutdown`` shape: two handler threads
#: both pass the ``_stopping`` guard and the flag is set twice.
STOPPING_RACE = {
    "fixpkg/high/daemon.py": """\
        class Server:
            def __init__(self):
                self._stopping = False

            def handle(self):
                self.begin_shutdown()

            def begin_shutdown(self):
                if self._stopping:
                    return
                self._stopping = True
        """,
}


def test_check_then_set_flag_race_is_flagged(tmp_path):
    found = findings_of(
        SharedStateRaceChecker(), tmp_path, STOPPING_RACE, **DAEMON_ROOTS
    )
    assert len(found) == 1
    assert "_stopping" in found[0].message
    assert "begin_shutdown" in found[0].message
    # The witness chain walks from the thread root to the write.
    assert "Server.handle" in found[0].message


def test_lock_guarded_flag_passes(tmp_path):
    found = findings_of(SharedStateRaceChecker(), tmp_path, {
        "fixpkg/high/daemon.py": """\
            import threading


            class Server:
                def __init__(self):
                    self._stopping = False
                    self._lock = threading.Lock()

                def handle(self):
                    self.begin_shutdown()

                def begin_shutdown(self):
                    with self._lock:
                        if self._stopping:
                            return
                        self._stopping = True
            """,
    }, **DAEMON_ROOTS)
    assert found == []


#: The pre-fix ``store.runtime.activate`` shape: an unsynchronized swap
#: of a module-global singleton from thread-reachable code.
ACTIVATE_RACE = {
    "fixpkg/high/daemon.py": """\
        from fixpkg.high import runtime


        class Server:
            def handle(self):
                runtime.activate(object())
        """,
    "fixpkg/high/runtime.py": """\
        _ACTIVE = None


        def activate(store):
            global _ACTIVE
            previous = _ACTIVE
            _ACTIVE = store
            return previous
        """,
}


def test_global_singleton_swap_is_flagged(tmp_path):
    found = findings_of(
        SharedStateRaceChecker(), tmp_path, ACTIVATE_RACE, **DAEMON_ROOTS
    )
    assert len(found) == 1
    assert "_ACTIVE" in found[0].message
    assert "activate" in found[0].message


def test_must_hold_covers_helpers_called_under_the_lock(tmp_path):
    # The helper writes shared state with no local guard, but every call
    # path into it holds the lock — the interprocedural must-hold set
    # keeps it clean.  Calling it once outside the lock flips the verdict.
    guarded = {
        "fixpkg/high/daemon.py": """\
            import threading


            class Server:
                def __init__(self):
                    self.state = {}
                    self._lock = threading.Lock()

                def handle(self):
                    with self._lock:
                        self._store(1)

                def _store(self, value):
                    self.state["latest"] = value
            """,
    }
    assert findings_of(
        SharedStateRaceChecker(), tmp_path, guarded, **DAEMON_ROOTS
    ) == []
    leaked = {
        "fixpkg/high/daemon.py": guarded["fixpkg/high/daemon.py"].replace(
            "with self._lock:\n                        self._store(1)",
            "self._store(1)",
        ),
    }
    found = findings_of(
        SharedStateRaceChecker(), tmp_path, leaked, **DAEMON_ROOTS
    )
    assert len(found) == 1
    assert "_store" in found[0].message


def test_lru_factory_results_are_thread_shared(tmp_path):
    # An lru_cache on a thread-reachable factory makes its instances
    # process-global: mutations through them are shared-state writes.
    files = {
        "fixpkg/high/daemon.py": """\
            import functools


            class Table:
                def __init__(self):
                    self.rows = {}

                def put(self, key, value):
                    self.rows[key] = value


            @functools.lru_cache(maxsize=None)
            def table_for(name: str) -> Table:
                return Table()


            class Server:
                def handle(self):
                    table_for("hot").put(1, 2)
            """,
    }
    found = findings_of(
        SharedStateRaceChecker(), tmp_path, files, **DAEMON_ROOTS
    )
    assert len(found) == 1
    assert "Table.rows" in found[0].message
    # Without the lru_cache the factory hands out private instances and
    # the same write is construction-local, not shared.
    private = {
        "fixpkg/high/daemon.py": files["fixpkg/high/daemon.py"].replace(
            "@functools.lru_cache(maxsize=None)\n            def table_for",
            "def table_for",
        ),
    }
    assert "lru_cache" not in private["fixpkg/high/daemon.py"]
    assert findings_of(
        SharedStateRaceChecker(), tmp_path, private, **DAEMON_ROOTS
    ) == []


def test_ctor_writes_are_not_races(tmp_path):
    found = findings_of(SharedStateRaceChecker(), tmp_path, {
        "fixpkg/high/daemon.py": """\
            class Server:
                def __init__(self):
                    self.state = {"ready": False}

                def handle(self):
                    return self.state
            """,
    }, **DAEMON_ROOTS)
    assert found == []


# -- concurrency.guarded-by --------------------------------------------------


def test_partially_guarded_location_is_flagged(tmp_path):
    found = findings_of(GuardedByChecker(), tmp_path, {
        "fixpkg/low/state.py": """\
            import threading

            _LOCK = threading.Lock()
            _STATE = {}


            def set_safe(value):
                with _LOCK:
                    _STATE["current"] = value


            def set_unsafe(value):
                _STATE["current"] = value
            """,
    })
    assert len(found) == 1
    assert "set_unsafe" in found[0].message
    assert "set_safe" in found[0].message  # names the guarded witness
    assert "_LOCK" in found[0].message


def test_consistently_guarded_location_passes(tmp_path):
    found = findings_of(GuardedByChecker(), tmp_path, {
        "fixpkg/low/state.py": """\
            import threading

            _LOCK = threading.Lock()
            _STATE = {}


            def set_a(value):
                with _LOCK:
                    _STATE["a"] = value


            def set_b(value):
                with _LOCK:
                    _STATE["b"] = value
            """,
    })
    assert found == []


def test_lock_order_cycle_is_flagged(tmp_path):
    found = findings_of(GuardedByChecker(), tmp_path, {
        "fixpkg/low/locks.py": """\
            import threading

            _A = threading.Lock()
            _B = threading.Lock()


            def forward():
                with _A:
                    with _B:
                        pass


            def backward():
                with _B:
                    with _A:
                        pass
            """,
    })
    assert len(found) == 1
    assert "lock-order cycle" in found[0].message
    assert "_A" in found[0].message and "_B" in found[0].message


def test_consistent_lock_order_passes(tmp_path):
    found = findings_of(GuardedByChecker(), tmp_path, {
        "fixpkg/low/locks.py": """\
            import threading

            _A = threading.Lock()
            _B = threading.Lock()


            def first():
                with _A:
                    with _B:
                        pass


            def second():
                with _A:
                    with _B:
                        pass
            """,
    })
    assert found == []


def test_cross_function_lock_cycle_is_flagged(tmp_path):
    # The cycle closes through a call edge: helper() acquires _A while
    # the caller still holds _B, and elsewhere _A nests over _B directly.
    found = findings_of(GuardedByChecker(), tmp_path, {
        "fixpkg/low/locks.py": """\
            import threading

            _A = threading.Lock()
            _B = threading.Lock()


            def helper():
                with _A:
                    pass


            def outer():
                with _B:
                    helper()


            def direct():
                with _A:
                    with _B:
                        pass
            """,
    })
    assert len(found) == 1
    assert "lock-order cycle" in found[0].message


# -- concurrency.fork-safety -------------------------------------------------


def test_bare_module_lock_crossing_fork_is_flagged(tmp_path):
    found = findings_of(ForkSafetyChecker(), tmp_path, {
        "fixpkg/low/work.py": """\
            import threading

            _LOCK = threading.Lock()
            _TOTALS = {}


            def run_task(name):
                with _LOCK:
                    _TOTALS[name] = _TOTALS.get(name, 0) + 1
            """,
    }, task_roots=("fixpkg.low.work:run_task",))
    assert len(found) == 1
    assert "_LOCK" in found[0].message
    assert "run_task" in found[0].message
    assert "os.getpid()" in found[0].hint


def test_pid_guarded_lock_accessor_passes(tmp_path):
    # The blessed pattern (kernel/stats._lock): compare os.getpid() and
    # re-arm the lock, so a forked worker never inherits a held lock.
    found = findings_of(ForkSafetyChecker(), tmp_path, {
        "fixpkg/low/work.py": """\
            import os
            import threading

            _LOCK = threading.Lock()
            _LOCK_PID = os.getpid()
            _TOTALS = {}


            def _lock():
                global _LOCK, _LOCK_PID
                pid = os.getpid()
                if pid != _LOCK_PID:
                    _LOCK = threading.Lock()
                    _LOCK_PID = pid
                return _LOCK


            def run_task(name):
                with _lock():
                    _TOTALS[name] = _TOTALS.get(name, 0) + 1
            """,
    }, task_roots=("fixpkg.low.work:run_task",))
    assert found == []


def test_sqlite_connection_needs_pid_reconnect(tmp_path):
    seeded = {
        "fixpkg/low/db.py": """\
            import sqlite3


            class Backend:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def read(self, key):
                    return self._conn.execute(
                        "select v from kv where k = ?", (key,)
                    ).fetchone()


            def run_task(name):
                return Backend("x.db").read(name)
            """,
    }
    found = findings_of(
        ForkSafetyChecker(), tmp_path, seeded,
        task_roots=("fixpkg.low.db:run_task",),
    )
    assert len(found) == 1
    assert "_conn" in found[0].message
    assert "sqlite3.connect" in found[0].message
    # The SqliteBackend._connection discipline: compare pids, rebuild.
    clean = {
        "fixpkg/low/db.py": """\
            import os
            import sqlite3


            class Backend:
                def __init__(self, path):
                    self._path = path
                    self._pid = os.getpid()
                    self._conn = sqlite3.connect(path)

                def _connection(self):
                    if self._pid != os.getpid():
                        self._pid = os.getpid()
                        self._conn = sqlite3.connect(self._path)
                    return self._conn

                def read(self, key):
                    return self._connection().execute(
                        "select v from kv where k = ?", (key,)
                    ).fetchone()


            def run_task(name):
                return Backend("x.db").read(name)
            """,
    }
    assert findings_of(
        ForkSafetyChecker(), tmp_path, clean,
        task_roots=("fixpkg.low.db:run_task",),
    ) == []


# -- concurrency.atomic-counters ---------------------------------------------


#: The pre-fix ``kernel/stats.record`` shape: a bare ``+=`` on the
#: counter table loses increments under concurrent handler threads.
COUNTER_RACE = {
    "fixpkg/low/stats.py": """\
        _COUNTERS = {"hits": 0}


        def record(name, amount=1):
            _COUNTERS[name] += amount
        """,
}


def test_unguarded_counter_increment_is_flagged(tmp_path):
    found = findings_of(
        AtomicCountersChecker(), tmp_path, COUNTER_RACE,
        counter_modules=("fixpkg.low.stats",),
    )
    assert len(found) == 1
    assert "read-modify-write" in found[0].message
    assert "_COUNTERS" in found[0].message


def test_locked_counter_increment_passes(tmp_path):
    found = findings_of(AtomicCountersChecker(), tmp_path, {
        "fixpkg/low/stats.py": """\
            import threading

            _COUNTERS = {"hits": 0}
            _LOCK = threading.Lock()


            def record(name, amount=1):
                with _LOCK:
                    _COUNTERS[name] += amount
            """,
    }, counter_modules=("fixpkg.low.stats",))
    assert found == []


def test_get_then_store_counter_update_is_flagged(tmp_path):
    # ``d[k] = d.get(k, 0) + n`` is the same lost-update shape as ``+=``.
    found = findings_of(AtomicCountersChecker(), tmp_path, {
        "fixpkg/low/stats.py": """\
            _COUNTERS = {}


            def record(name, amount=1):
                _COUNTERS[name] = _COUNTERS.get(name, 0) + amount
            """,
    }, counter_modules=("fixpkg.low.stats",))
    assert len(found) == 1
    assert "read-modify-write" in found[0].message


def test_plain_counter_reset_is_not_rmw(tmp_path):
    found = findings_of(AtomicCountersChecker(), tmp_path, {
        "fixpkg/low/stats.py": """\
            _COUNTERS = {"hits": 0}


            def reset():
                _COUNTERS["hits"] = 0
            """,
    }, counter_modules=("fixpkg.low.stats",))
    assert found == []
