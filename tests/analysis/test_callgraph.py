"""Resolution behaviour of the project call graph."""

from repro.analysis.callgraph import CallGraph

from tests.analysis.util import build


def graph_for(tmp_path, files):
    codebase, _config = build(tmp_path, files)
    return CallGraph(codebase)


def site(graph, qualname, predicate):
    sites = [s for s in graph.scans[qualname].calls if predicate(s)]
    assert sites, f"no matching call site in {qualname}"
    return sites[0]


def test_functions_are_indexed_with_params_sans_self(tmp_path):
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            class Box:
                def put(self, item, slot=0):
                    self.item = item


            def free(a, b):
                return a + b
            """,
    })
    put = graph.functions["fixpkg.low.base.Box.put"]
    assert put.params == ("item", "slot")
    assert put.self_name == "self"
    free = graph.functions["fixpkg.low.base.free"]
    assert free.params == ("a", "b")
    assert free.self_name is None


def test_direct_and_method_calls_resolve(tmp_path):
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            def helper(x):
                return x


            class Runner:
                def step(self):
                    return helper(1)

                def run(self):
                    return self.step()
            """,
    })
    direct = site(
        graph, "fixpkg.low.base.Runner.step", lambda s: s.target
    )
    assert direct.target == "fixpkg.low.base.helper"
    method = site(
        graph, "fixpkg.low.base.Runner.run", lambda s: s.target
    )
    assert method.target == "fixpkg.low.base.Runner.step"
    assert method.receiver == "self"


def test_constructor_and_external_calls(tmp_path):
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            import json


            class Thing:
                def __init__(self, v):
                    self.v = v


            def make():
                return Thing(json.dumps({}))
            """,
    })
    ctor = site(graph, "fixpkg.low.base.make", lambda s: s.constructor)
    assert ctor.target == "fixpkg.low.base.Thing"
    ext = site(graph, "fixpkg.low.base.make", lambda s: s.external)
    assert ext.external == "json.dumps"


def test_attr_types_follow_annotated_ctor_chains(tmp_path):
    """``self.cat = table.cat`` resolves through the field annotation."""
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            from dataclasses import dataclass


            class Cat:
                def point(self, i):
                    return i


            @dataclass
            class Table:
                cat: Cat


            class Solver:
                def __init__(self, table: Table):
                    self.cat = table.cat

                def probe(self):
                    return self.cat.point(0)
            """,
    })
    assert graph.attr_types["fixpkg.low.base.Solver"]["cat"] == (
        "fixpkg.low.base.Cat"
    )
    probe = site(graph, "fixpkg.low.base.Solver.probe", lambda s: s.target)
    assert probe.target == "fixpkg.low.base.Cat.point"


def test_bound_method_alias_resolves(tmp_path):
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            class Pool:
                def intern(self, s):
                    return s

                def drain(self, items):
                    intern = self.intern
                    return [intern(i) for i in items]
            """,
    })
    aliased = site(
        graph, "fixpkg.low.base.Pool.drain", lambda s: s.target
    )
    assert aliased.target == "fixpkg.low.base.Pool.intern"
    assert aliased.receiver == "self"


def test_store_roots_and_kw_roots(tmp_path):
    graph = graph_for(tmp_path, {
        "fixpkg/low/base.py": """\
            REGISTRY = {}


            def fill(out):
                out["k"] = 1


            def caller(data):
                fill(out=data)


            class Holder:
                def keep(self, v):
                    self.v = v
                    REGISTRY["x"] = v
            """,
    })
    scan = graph.scans["fixpkg.low.base.Holder.keep"]
    roots = sorted(store.root for store in scan.stores)
    assert roots == ["global:fixpkg.low.base.REGISTRY", "self"]
    kw_site = site(graph, "fixpkg.low.base.caller", lambda s: s.target)
    assert kw_site.kw_roots == (("out", "param:data"),)


def test_declared_effects_comment_is_parsed(tmp_path):
    codebase, _config = build(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: effects[pure] trusted by contract
            def opaque(f):
                return f()


            # repro-lint: effects[io, nondeterministic] probes the host
            def probe():
                return object()
            """,
    })
    graph = CallGraph(codebase)
    assert graph.scans["fixpkg.low.base.opaque"].declared == frozenset()
    assert graph.scans["fixpkg.low.base.probe"].declared == frozenset(
        {"io", "nondeterministic"}
    )
