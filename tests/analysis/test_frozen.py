"""Seeded violations for the frozen-AST rule."""

from repro.analysis.frozen import FrozenAstChecker

from tests.analysis.util import build, line_of


def run(tmp_path, source):
    codebase, config = build(tmp_path, {"fixpkg/mid/syntax.py": source})
    return codebase, list(FrozenAstChecker().check(codebase, config))


def test_unfrozen_dataclass_and_unhashable_field_are_flagged(tmp_path):
    codebase, findings = run(
        tmp_path,
        """\
        from dataclasses import dataclass


        class Node:
            pass


        @dataclass
        class Bad(Node):
            items: list[int]


        @dataclass(frozen=True)
        class Good(Node):
            items: tuple[int, ...]
        """,
    )
    assert len(findings) == 2
    by_message = {f.message: f for f in findings}
    unfrozen = by_message[
        "AST node Bad is a dataclass without frozen=True"
    ]
    assert unfrozen.line == line_of(
        codebase, "fixpkg/mid/syntax.py", "class Bad(Node)"
    )
    unhashable = by_message[
        "AST node Bad.items is annotated with unhashable type 'list[int]'"
    ]
    assert unhashable.line == line_of(
        codebase, "fixpkg/mid/syntax.py", "items: list[int]"
    )


def test_unhashable_union_member_poisons_the_field(tmp_path):
    _, findings = run(
        tmp_path,
        """\
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Holder:
            payload: dict[str, int] | None
        """,
    )
    assert len(findings) == 1
    assert "unhashable type" in findings[0].message


def test_plain_classes_and_outside_modules_are_ignored(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/mid/syntax.py": """\
                class Node:
                    mutable = []
                """,
            "fixpkg/low/records.py": """\
                from dataclasses import dataclass


                @dataclass
                class Row:
                    cells: list[str]
                """,
        },
    )
    assert list(FrozenAstChecker().check(codebase, config)) == []
