"""Seeded violations for the import-layering rule."""

from repro.analysis.layering import ImportLayeringChecker

from tests.analysis.util import build, line_of


def test_upward_import_is_flagged(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/low/base.py": """\
                from fixpkg.high import top


                def value():
                    return top.VALUE
                """,
            "fixpkg/high/top.py": "VALUE = 1\n",
        },
    )
    findings = list(ImportLayeringChecker().check(codebase, config))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "import-layering"
    assert finding.path == "fixpkg/low/base.py"
    assert finding.line == line_of(
        codebase, "fixpkg/low/base.py", "from fixpkg.high import top"
    )
    assert "imports upward" in finding.message


def test_downward_import_is_fine(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/low/base.py": "VALUE = 1\n",
            "fixpkg/high/top.py": """\
                from fixpkg.low import base


                def value():
                    return base.VALUE
                """,
        },
    )
    assert list(ImportLayeringChecker().check(codebase, config)) == []


def test_same_layer_import_is_fine(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/mid/syntax.py": "VALUE = 1\n",
            "fixpkg/mid/walker.py": "from fixpkg.mid import syntax  # ok\n",
        },
        layers=(("low",), ("mid", "other"), ("high",)),
    )
    assert list(ImportLayeringChecker().check(codebase, config)) == []


def test_leaf_module_must_not_import_package_code(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/leaf.py": "from fixpkg.low import base\n",
            "fixpkg/low/base.py": "VALUE = 1\n",
        },
    )
    findings = list(ImportLayeringChecker().check(codebase, config))
    assert len(findings) == 1
    assert findings[0].path == "fixpkg/leaf.py"
    assert "leaf module" in findings[0].message


def test_importing_the_leaf_from_anywhere_is_fine(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/leaf.py": "VALUE = 1\n",
            "fixpkg/low/base.py": "from fixpkg import leaf  # ok\n",
            "fixpkg/high/top.py": "from fixpkg import leaf  # ok\n",
        },
    )
    assert list(ImportLayeringChecker().check(codebase, config)) == []


def test_relative_imports_resolve_before_layer_check(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/low/base.py": "from ..high import top\n",
            "fixpkg/high/top.py": "VALUE = 1\n",
        },
    )
    findings = list(ImportLayeringChecker().check(codebase, config))
    assert len(findings) == 1
    assert "imports upward" in findings[0].message
