"""Cache soundness: versions.lock must track task function sources."""

import json

from repro.analysis.cachesound import (
    CacheSoundnessChecker,
    function_source_hash,
    load_lock,
    update_lock,
    write_lock,
)

from tests.analysis import fixreg
from tests.analysis.util import build


def make(tmp_path):
    codebase, config = build(
        tmp_path,
        {"fixpkg/low/base.py": "VALUE = 1\n"},
        registry_builder="tests.analysis.fixreg:build_registry",
        lock_path=tmp_path / "versions.lock",
    )
    return codebase, config


def run(codebase, config):
    return list(CacheSoundnessChecker().check(codebase, config))


def test_function_source_hash_is_stable_hex(tmp_path):
    first = function_source_hash(fixreg.successor)
    assert first == function_source_hash(fixreg.successor)
    assert len(first) == 64
    assert first != function_source_hash(fixreg.twice)


def test_missing_lock_entries_are_flagged_at_the_function(tmp_path):
    codebase, config = make(tmp_path)
    findings = run(codebase, config)
    assert sorted(f.message for f in findings) == [
        "task 'T1' has no versions.lock entry",
        "task 'T2' has no versions.lock entry",
    ]
    t1 = next(f for f in findings if "'T1'" in f.message)
    assert t1.path.endswith("tests/analysis/fixreg.py")
    assert t1.line == fixreg.successor.__code__.co_firstlineno


def test_update_lock_then_clean(tmp_path):
    codebase, config = make(tmp_path)
    outcome = update_lock(config)
    assert outcome == {"written": True, "needs_bump": []}
    assert run(codebase, config) == []
    lock = load_lock(config.resolved_lock_path())
    assert set(lock) == {"T1", "T2"}
    assert lock["T1"]["version"] == "1"
    assert lock["T1"]["source_sha256"] == function_source_hash(
        fixreg.successor
    )


def test_source_change_without_version_bump_is_flagged(tmp_path):
    # Simulate "the function changed but the version salt did not":
    # keep the locked version equal to the registry's, with a stale hash.
    codebase, config = make(tmp_path)
    update_lock(config)
    lock = load_lock(config.resolved_lock_path())
    lock["T1"]["source_sha256"] = "0" * 64
    write_lock(config.resolved_lock_path(), lock)
    findings = run(codebase, config)
    assert len(findings) == 1
    finding = findings[0]
    assert "function source changed but version is still '1'" in (
        finding.message
    )
    assert finding.line == fixreg.successor.__code__.co_firstlineno


def test_version_bump_with_stale_lock_asks_for_regeneration(tmp_path):
    codebase, config = make(tmp_path)
    update_lock(config)
    lock = load_lock(config.resolved_lock_path())
    lock["T2"]["version"] = "2"  # registry says "3": lock is stale
    write_lock(config.resolved_lock_path(), lock)
    findings = run(codebase, config)
    assert len(findings) == 1
    assert "versions.lock is stale" in findings[0].message
    assert "--update-lock" in findings[0].hint


def test_ghost_lock_entries_are_flagged(tmp_path):
    codebase, config = make(tmp_path)
    update_lock(config)
    lock = load_lock(config.resolved_lock_path())
    lock["T9"] = {"fn": "x:y", "version": "1", "source_sha256": "0" * 64}
    write_lock(config.resolved_lock_path(), lock)
    findings = run(codebase, config)
    assert [f.message for f in findings] == [
        "versions.lock records unknown task 'T9'"
    ]


def test_update_lock_refuses_source_change_without_bump(tmp_path):
    _, config = make(tmp_path)
    update_lock(config)
    path = config.resolved_lock_path()
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["tasks"]["T1"]["source_sha256"] = "0" * 64
    path.write_text(json.dumps(payload), encoding="utf-8")
    outcome = update_lock(config)
    assert outcome == {"written": False, "needs_bump": ["T1"]}
    # force=True writes anyway (deliberate-regeneration escape hatch).
    assert update_lock(config, force=True)["written"] is True


def test_unresolvable_fn_path_is_flagged(tmp_path, monkeypatch):
    codebase, config = make(tmp_path)
    update_lock(config)

    original = fixreg.build_registry

    def broken_registry():
        registry = original()
        registry.add("T3", "tests.analysis.fixreg:missing", version="1")
        return registry

    monkeypatch.setattr(fixreg, "build_registry", broken_registry)
    findings = run(codebase, config)
    assert len(findings) == 1
    assert "task 'T3': fn path does not resolve" in findings[0].message
