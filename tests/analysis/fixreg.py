"""An importable two-task registry for the cache-soundness tests.

Lives in a real module (not a tmp file) because the checker resolves
builder and task functions from dotted paths with ``importlib``.
"""

from __future__ import annotations

from repro.engine.spec import TaskRegistry


def successor(value: int) -> int:
    return value + 1


def twice(value: int) -> int:
    return value * 2


def build_registry() -> TaskRegistry:
    registry = TaskRegistry()
    registry.add(
        "T1", "tests.analysis.fixreg:successor", args={"value": 1},
        version="1",
    )
    registry.add(
        "T2", "tests.analysis.fixreg:twice", deps={"value": "T1"},
        version="3",
    )
    return registry
