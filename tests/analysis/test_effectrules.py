"""Seeded-violation and clean-pass fixtures for the effects.* rules."""

from repro.analysis.effectrules import (
    EffectAssignmentPurityChecker,
    EffectPurityPropagationChecker,
    MemoKeyCompletenessChecker,
    WorkerIsolationChecker,
)

from tests.analysis.util import build


def findings_of(checker, tmp_path, files, **overrides):
    codebase, config = build(tmp_path, files, **overrides)
    return list(checker.check(codebase, config))


# -- effects.purity-propagation ---------------------------------------------


def test_transitively_impure_lru_cache_is_flagged(tmp_path):
    found = findings_of(EffectPurityPropagationChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            import functools


            def helper(x):
                print(x)
                return x


            @functools.lru_cache(maxsize=None)
            def cached(x):
                return helper(x)
            """,
    })
    assert len(found) == 1
    assert "cached()" in found[0].message
    assert "io" in found[0].message
    assert "helper" in found[0].message  # the witness chain names the leaf


def test_transitively_pure_lru_cache_passes(tmp_path):
    found = findings_of(EffectPurityPropagationChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            import functools


            def helper(acc, x):
                acc.append(x)


            @functools.lru_cache(maxsize=None)
            def cached(x):
                out = []
                helper(out, x)
                return tuple(out)
            """,
    })
    assert found == []


# -- effects.assignment-purity ----------------------------------------------

# The PR-4 regression class: an _assignment_pure atom whose _evaluate
# reads the per-word structure (here via structure.constant) poisons
# every family-wide memo keyed only on the assigned values.
WORDVIEW_BUG = {
    "fixpkg/low/base.py": """\
        class BrokenAtom:
            _assignment_pure = True

            def _evaluate(self, structure, assignment):
                return assignment["x"] == structure.constant("u")
        """,
}


def test_structure_read_in_assignment_pure_atom_is_flagged(tmp_path):
    found = findings_of(
        EffectAssignmentPurityChecker(), tmp_path, WORDVIEW_BUG
    )
    # Both sub-checks fire: the direct structure read, and the summary
    # check (structure.constant on an unknown receiver infers unknown).
    assert found
    assert any(
        "reads the per-word structure parameter 'structure'" in f.message
        for f in found
    )
    assert all("BrokenAtom" in f.message for f in found)


def test_impure_reachable_code_in_atom_is_flagged(tmp_path):
    found = findings_of(EffectAssignmentPurityChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            def log(x):
                print(x)


            class NoisyAtom:
                _assignment_pure = True

                def _evaluate(self, structure, assignment):
                    log(assignment)
                    return True
            """,
    })
    assert any("io" in f.message for f in found)


def test_clean_assignment_pure_atom_passes(tmp_path):
    found = findings_of(EffectAssignmentPurityChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class CleanAtom:
                _assignment_pure = True

                def _evaluate(self, structure, assignment):
                    return assignment["x"] == assignment["y"]
            """,
    })
    assert found == []


def test_subclass_evaluate_is_also_checked(tmp_path):
    found = findings_of(EffectAssignmentPurityChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class BaseAtom:
                _assignment_pure = True

                def _evaluate(self, structure, assignment):
                    return True


            class LeakyAtom(BaseAtom):
                def _evaluate(self, structure, assignment):
                    return structure.contains(assignment["x"])
            """,
    })
    assert any("LeakyAtom" in f.message for f in found)


# -- effects.memo-key-completeness ------------------------------------------


MEMO = dict(memo_modules=("fixpkg.low.base",))


def test_memo_value_depending_on_non_key_state_is_flagged(tmp_path):
    found = findings_of(MemoKeyCompletenessChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class Family:
                def __init__(self):
                    self._memo = {}

                def lookup(self, key, ctx):
                    cached = self._memo.get(key)
                    if cached is None:
                        cached = len(ctx.view) + len(key)
                        self._memo[key] = cached
                    return cached
            """,
    }, **MEMO)
    assert len(found) == 1
    assert "'ctx'" in found[0].message
    assert "self._memo" in found[0].message


def test_key_derived_memo_value_passes(tmp_path):
    found = findings_of(MemoKeyCompletenessChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class Family:
                def __init__(self):
                    self._memo = {}
                    self.scale = 3

                def lookup(self, key):
                    pair = (key, len(key))
                    cached = self._memo.get(pair)
                    if cached is None:
                        cached = len(key) * self.scale
                        self._memo[pair] = cached
                    return cached
            """,
    }, **MEMO)
    assert found == []


def test_plain_local_memo_is_not_family_wide(tmp_path):
    found = findings_of(MemoKeyCompletenessChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            def search(items, ctx):
                local = {}
                for key in items:
                    value = local.get(key)
                    if value is None:
                        value = ctx.rank(key)
                        local[key] = value
                return local
            """,
    }, **MEMO)
    assert found == []


def test_aliased_self_memo_is_checked(tmp_path):
    found = findings_of(MemoKeyCompletenessChecker(), tmp_path, {
        "fixpkg/low/base.py": """\
            class Family:
                def __init__(self):
                    self._states = {}

                def state_for(self, word, clock):
                    states = self._states
                    state = states.get(word)
                    if state is None:
                        state = (word, clock)
                        states[word] = state
                    return state
            """,
    }, **MEMO)
    assert len(found) == 1
    assert "'clock'" in found[0].message


# -- effects.worker-isolation -----------------------------------------------


def test_task_reachable_global_assignment_is_flagged(tmp_path):
    found = findings_of(
        WorkerIsolationChecker(),
        tmp_path,
        {
            "fixpkg/low/base.py": """\
                RESULTS = {}


                def remember(name, value):
                    RESULTS[name] = value


                def task_fn(n):
                    remember("n", n)
                    return n
                """,
        },
        task_roots=("fixpkg.low.base:task_fn",),
    )
    assert len(found) == 1
    assert "remember()" in found[0].message
    assert "task_fn" in found[0].message  # chain from the root


def test_counter_module_writes_are_exempt(tmp_path):
    found = findings_of(
        WorkerIsolationChecker(),
        tmp_path,
        {
            "fixpkg/low/stats.py": """\
                TALLY = {}


                def record(name):
                    TALLY[name] = TALLY.get(name, 0) + 1
                """,
            "fixpkg/low/base.py": """\
                from fixpkg.low import stats


                def task_fn(n):
                    stats.record("task")
                    return n
                """,
        },
        task_roots=("fixpkg.low.base:task_fn",),
        counter_modules=("fixpkg.low.stats",),
    )
    assert found == []


def test_store_channel_calls_are_exempt(tmp_path):
    found = findings_of(
        WorkerIsolationChecker(),
        tmp_path,
        {
            "fixpkg/low/storemod.py": """\
                _ACTIVE = None


                def publish(kind, args, payload):
                    if _ACTIVE is not None:
                        _ACTIVE[kind, str(args)] = payload
                """,
            "fixpkg/low/base.py": """\
                from fixpkg.low import storemod


                def task_fn(n):
                    storemod.publish("squares", n, n * n)
                    return n
                """,
        },
        task_roots=("fixpkg.low.base:task_fn",),
        store_modules=("fixpkg.low.storemod",),
    )
    assert found == []


def test_inline_store_pin_outside_channel_is_flagged(tmp_path):
    found = findings_of(
        WorkerIsolationChecker(),
        tmp_path,
        {
            "fixpkg/low/base.py": """\
                def sneaky(n):  # repro-lint: effects[store]
                    with open("artifacts.json", "a") as fh:
                        fh.write(str(n))


                def task_fn(n):
                    sneaky(n)
                    return n
                """,
        },
        task_roots=("fixpkg.low.base:task_fn",),
        store_modules=("fixpkg.low.storemod",),
    )
    assert len(found) == 1
    assert "sneaky()" in found[0].message
    assert "store modules" in found[0].message


def test_store_pin_inside_channel_module_is_allowed(tmp_path):
    found = findings_of(
        WorkerIsolationChecker(),
        tmp_path,
        {
            "fixpkg/low/storemod.py": """\
                def publish(kind, args, payload):  # repro-lint: effects[store]
                    with open("artifacts.json", "a") as fh:
                        fh.write(kind)
                """,
            "fixpkg/low/base.py": """\
                from fixpkg.low import storemod


                def task_fn(n):
                    storemod.publish("squares", n, n * n)
                    return n
                """,
        },
        task_roots=("fixpkg.low.base:task_fn",),
        store_modules=("fixpkg.low.storemod",),
    )
    assert found == []
