"""Seeded violations for the determinism rule."""

from repro.analysis.determinism import DeterminismChecker
from repro.analysis.framework import run_checkers

from tests.analysis.util import build, line_of


def run(tmp_path, source, **overrides):
    codebase, config = build(
        tmp_path, {"fixpkg/high/solver.py": source}, **overrides
    )
    return codebase, config, list(
        DeterminismChecker().check(codebase, config)
    )


def test_wall_clock_read_is_flagged(tmp_path):
    codebase, _, findings = run(
        tmp_path,
        """\
        import time


        def stamp():
            return time.time()
        """,
    )
    assert [f.message for f in findings] == [
        "wall-clock read time.time() in a deterministic module"
    ]
    assert findings[0].line == line_of(
        codebase, "fixpkg/high/solver.py", "return time.time()"
    )


def test_environment_reads_are_flagged(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        import os


        def config():
            return os.environ.get("X", os.getenv("Y"))
        """,
    )
    assert sorted(f.message for f in findings) == [
        "os.environ read in a deterministic module",
        "os.getenv read in a deterministic module",
    ]


def test_unseeded_random_is_flagged_seeded_is_not(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        import random


        def bad():
            return random.random(), random.Random()


        def good():
            return random.Random(42).random()
        """,
    )
    assert sorted(f.message for f in findings) == [
        "random.Random() constructed without a seed",
        "unseeded module-level random.random() call",
    ]


def test_fresh_set_iteration_is_flagged_sorted_is_not(tmp_path):
    codebase, _, findings = run(
        tmp_path,
        """\
        def bad(values):
            return [v for v in {x * 2 for x in values}]


        def good(values):
            return sorted({x * 2 for x in values})


        def also_good(values):
            return any(v for v in {x * 2 for x in values})
        """,
    )
    assert len(findings) == 1
    assert "hash randomisation" in findings[0].message
    assert findings[0].line == line_of(
        codebase, "fixpkg/high/solver.py", "[v for v in {x * 2 for x in values}]"
    )


def test_id_call_is_flagged(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        def order(items):
            return [id(item) for item in items]
        """,
    )
    assert [f.message for f in findings] == [
        "id()-dependent logic in a deterministic module"
    ]


def test_modules_outside_the_prefix_are_not_checked(tmp_path):
    codebase, config = build(
        tmp_path,
        {
            "fixpkg/low/cli.py": """\
                import time


                def stamp():
                    return time.time()
                """,
        },
    )
    assert list(DeterminismChecker().check(codebase, config)) == []


def test_inline_suppression_moves_finding_to_suppressed(tmp_path):
    _, config, _ = run(
        tmp_path,
        """\
        import time


        def stamp():
            # repro-lint: allow[determinism] report metadata only
            return time.time()
        """,
    )
    active, suppressed = run_checkers(
        config, checkers=[DeterminismChecker()]
    )
    assert active == []
    assert len(suppressed) == 1
    assert suppressed[0].rule == "determinism"


def test_entropy_reads_are_flagged(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        import os
        import uuid


        def token():
            return os.urandom(8)


        def fresh_id():
            return uuid.uuid4()


        def node_id():
            return uuid.uuid1()
        """,
    )
    messages = sorted(f.message for f in findings)
    assert messages == [
        "entropy read os.urandom() in a deterministic module",
        "entropy read uuid.uuid1() in a deterministic module",
        "entropy read uuid.uuid4() in a deterministic module",
    ]


def test_content_derived_uuid_is_not_flagged(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        import uuid


        def stable_id(name):
            return uuid.uuid5(uuid.NAMESPACE_URL, name)
        """,
    )
    assert findings == []


def test_hash_ordering_key_is_flagged(tmp_path):
    codebase, _, findings = run(
        tmp_path,
        """\
        def shuffle_ish(items):
            return sorted(items, key=hash)


        def pick(items):
            return min(items, key=lambda x: hash(x.name))


        def inplace(items):
            items.sort(key=hash)
        """,
    )
    assert len(findings) == 3
    assert all("hash() used as the ordering key" in f.message for f in findings)
    assert {f.line for f in findings} == {
        line_of(codebase, "fixpkg/high/solver.py", "sorted(items"),
        line_of(codebase, "fixpkg/high/solver.py", "min(items"),
        line_of(codebase, "fixpkg/high/solver.py", "items.sort"),
    }


def test_value_derived_ordering_key_is_not_flagged(tmp_path):
    _, _, findings = run(
        tmp_path,
        """\
        def stable(items):
            return sorted(items, key=lambda x: (len(x), x))
        """,
    )
    assert findings == []
