"""Unit tests for the id-domain flow analysis (repro.analysis.domains).

Each test seeds a fixture package with pinned producers and asserts on
the analysis object directly: parsed specs, collected pins, inferred
return domains and recorded events.  The rule-level behaviour (findings,
suppression, scoping) lives in ``test_domainrules.py``.
"""

from repro.analysis.domains import DomainAnalysis, parse_spec

from tests.analysis.util import build

# A miniature of repro.kernel.bitset: same function names, so the flow
# models it natively once ``bitset_modules`` points at it.
BITSET = """\
    def from_ids(ids):
        mask = 0
        for gid in ids:
            mask |= 1 << gid
        return mask


    def declare_universe(mask, role):
        del role
        return mask


    def contains(mask, gid):
        return (mask >> gid) & 1 == 1


    def count(mask):
        return mask.bit_count()


    def iter_ids(mask):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low
    """


def analysis_of(tmp_path, files, **overrides):
    overrides.setdefault("bitset_modules", ("fixpkg.low.bits",))
    codebase, config = build(tmp_path, files, **overrides)
    return DomainAnalysis(codebase, config)


def events_of(analysis, qualname):
    return [(e.kind, e.message) for e in analysis.events.get(qualname, [])]


# -- spec grammar ------------------------------------------------------------


def test_parse_spec_accepts_the_lattice():
    assert parse_spec("plain") == "plain"
    assert parse_spec(" slot ") == "slot"
    assert parse_spec("interval") == "interval"
    assert parse_spec("shard-lane") == "shard-lane"
    assert parse_spec("dfa-state") == "dfa-state"
    assert parse_spec("intern:sweep") == "intern:sweep"
    assert parse_spec("bitset-universe:sweep") == "bitset-universe:sweep"
    assert parse_spec("bitset-pool:sweep") == "bitset-pool:sweep"
    assert parse_spec("iter[intern:sweep]") == "iter[intern:sweep]"
    # Nested containers normalise whitespace.
    assert (
        parse_spec("map[slot,intern:sweep]") == "map[slot, intern:sweep]"
    )
    assert (
        parse_spec("map[plain, map[plain, interval]]")
        == "map[plain, map[plain, interval]]"
    )


def test_parse_spec_rejects_malformed_text():
    assert parse_spec("banana") is None
    assert parse_spec("intern:") is None
    assert parse_spec("intern:no spaces") is None
    assert parse_spec("iter[banana]") is None
    assert parse_spec("map[slot]") is None
    assert parse_spec("map[slot, intern:sweep, extra]") is None


# -- pin collection ----------------------------------------------------------


def test_def_pin_declares_returns_and_params(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=intern:sweep, text=plain] the mint
            def intern(text):
                return 7
            """,
    })
    assert analysis.returns["fixpkg.low.base.intern"] == "intern:sweep"
    assert analysis.param_pins["fixpkg.low.base.intern"] == {"text": "plain"}
    assert analysis.pin_errors == []
    assert analysis.pin_count == 2


def test_malformed_pin_is_collected_as_error(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[banana] not a real domain
            VALUE = 3
            """,
    })
    assert len(analysis.pin_errors) == 1
    module, line, text = analysis.pin_errors[0]
    assert module == "fixpkg.low.base"
    assert text == "banana"


def test_attribute_pin_flows_through_self(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            class Table:
                def __init__(self):
                    self.gid = 0  # repro-lint: domain[intern:sweep] the id

                def probe(self):
                    return self.gid
            """,
    })
    assert (
        analysis.attr_domains["fixpkg.low.base.Table"]["gid"]
        == "intern:sweep"
    )
    assert analysis.returns["fixpkg.low.base.Table.probe"] == "intern:sweep"


# -- interprocedural inference ----------------------------------------------


def test_return_domains_propagate_through_calls(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=intern:sweep] the mint
            def intern(text):
                return 0


            def alias(text):
                return intern(text)


            def collect(texts):
                return [alias(text) for text in texts]
            """,
    })
    assert analysis.returns["fixpkg.low.base.alias"] == "intern:sweep"
    assert (
        analysis.returns["fixpkg.low.base.collect"] == "iter[intern:sweep]"
    )


def test_shift_mints_pool_and_intersection_restores_universe(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/bits.py": BITSET,
        "fixpkg/low/base.py": """\
            from fixpkg.low import bits


            # repro-lint: domain[returns=intern:sweep] the mint
            def intern(text):
                return 0


            # repro-lint: domain[returns=bitset-universe:sweep] member mask
            def member_mask():
                return bits.declare_universe(3, "sweep")


            def witness(text):
                pool = 1 << intern(text)
                safe = pool & member_mask()
                return sorted(bits.iter_ids(safe))
            """,
    })
    witness = "fixpkg.low.base.witness"
    assert analysis.returns[witness] == "iter[intern:sweep]"
    assert events_of(analysis, witness) == []


def test_witnessing_an_unrestricted_pool_records_escape(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/bits.py": BITSET,
        "fixpkg/low/base.py": """\
            from fixpkg.low import bits


            # repro-lint: domain[returns=intern:sweep] the mint
            def intern(text):
                return 0


            def witness(text):
                pool = 1 << intern(text)
                return sorted(bits.iter_ids(pool))
            """,
    })
    [(kind, message)] = events_of(analysis, "fixpkg.low.base.witness")
    assert kind == "escape"
    assert "bitset-pool:sweep" in message


def test_unpinned_modules_stay_out_of_scope(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            def plain_arithmetic(a, b):
                return (a << b) & (a | b)
            """,
    })
    # No pins anywhere: the module is never walked, so no events exist.
    assert "fixpkg.low.base" not in {
        analysis.graph.functions[q].module for q in analysis.events
    }


def test_summary_payload_shape(tmp_path):
    analysis = analysis_of(tmp_path, {
        "fixpkg/low/base.py": """\
            # repro-lint: domain[returns=slot] the slot mint
            def slot_of(name):
                return 0
            """,
    })
    payload = analysis.summary_payload()
    assert payload["pins"] == 1
    assert payload["pin_errors"] == []
    assert "fixpkg.low.base" in payload["modules_analyzed"]
    [entry] = payload["functions"]
    assert entry["function"] == "fixpkg.low.base.slot_of"
    assert entry["returns"] == "slot"
    assert entry["events"] == []
    assert payload["events"] == {}
