"""Differential check: kernel-backed FO[EQ] solver vs the naive oracle.

The interval-id solver in :mod:`repro.foeq.games` must agree with the
preserved string-based implementation (:mod:`repro.foeq.naive`) on every
verdict — full small grids, both signatures (with and without EQ), and
the E20 witness pairs — and the compiled position evaluator must agree
with the reference interpreter ``p_evaluate``.
"""

import itertools
import random

import pytest

from repro.foeq.builders import phi_has_factor, phi_sorted, phi_square
from repro.foeq.compiled import position_program
from repro.foeq.games import (
    PositionGameSolver,
    foeq_distinguishing_rank,
    foeq_equiv_k,
    folt_distinguishing_rank,
    folt_equiv_k,
)
from repro.foeq.naive import NaivePositionGameSolver, position_partial_iso
from repro.words.generators import words_up_to

SEED = 20260806
WORDS4 = list(words_up_to("ab", 4))


@pytest.mark.parametrize("with_eq", [True, False])
def test_full_grid_up_to_length_4(with_eq):
    for w, v in itertools.product(WORDS4, repeat=2):
        fast = PositionGameSolver(w, v, with_eq=with_eq)
        slow = NaivePositionGameSolver(w, v, with_eq=with_eq)
        for k in (1, 2, 3):
            assert fast.duplicator_wins(k) == slow.duplicator_wins(k), (
                w,
                v,
                with_eq,
                k,
            )


@pytest.mark.parametrize("with_eq", [True, False])
def test_seeded_longer_pairs(with_eq):
    rng = random.Random(SEED)
    for _ in range(15):
        w = "".join(rng.choice("ab") for _ in range(rng.randint(5, 7)))
        v = "".join(rng.choice("ab") for _ in range(rng.randint(5, 7)))
        fast = PositionGameSolver(w, v, with_eq=with_eq)
        slow = NaivePositionGameSolver(w, v, with_eq=with_eq)
        for k in (1, 2):
            assert fast.duplicator_wins(k) == slow.duplicator_wins(k), (w, v, k)


def test_e20_witness_pairs():
    w, v = "a" * 12 + "b" * 12, "a" * 14 + "b" * 12
    assert foeq_equiv_k(w, v, 2)
    assert foeq_distinguishing_rank("aaaa", "aaa", 4) == 3
    assert foeq_distinguishing_rank("ab", "ba", 3) == 2
    sq, nonsq = "ab" * 4, "ab" * 5
    assert folt_equiv_k(sq, nonsq, 2)
    assert not foeq_equiv_k(sq, nonsq, 3)
    assert folt_distinguishing_rank("aa", "ab", 2) is not None


def test_consistent_matches_specification():
    # The public consistent() delegates to position_partial_iso; the
    # incremental _extend must induce exactly the same consistent sets.
    solver = PositionGameSolver("abab", "abba")
    for p1, q1, p2, q2 in itertools.product(range(1, 5), repeat=4):
        pairs = frozenset(((p1, q1), (p2, q2)))
        spec = solver.consistent(pairs)
        ordered = sorted(pairs)
        state = solver._extend((), ordered[0])
        incremental = state is not None
        if incremental and len(ordered) > 1:
            incremental = solver._extend(state, ordered[1]) is not None
        assert incremental == spec, pairs


def test_position_partial_iso_reexported():
    assert not position_partial_iso("ab", "ba", (1,), (1,))
    assert position_partial_iso("ab", "ba", (1,), (2,))


def test_solver_stats_shape_matches_naive():
    fast = PositionGameSolver("aabba", "abbaa")
    slow = NaivePositionGameSolver("aabba", "abbaa")
    fast.duplicator_wins(2)
    slow.duplicator_wins(2)
    fast_stats = fast.solver_stats()
    slow_stats = slow.solver_stats()
    assert set(fast_stats) == set(slow_stats)
    assert fast_stats["positions_explored"] > 0
    assert fast_stats["consistency_checks"] > 0
    assert fast_stats["memo_size"] == fast.memo_size()
    assert fast_stats["universe_a"] == 5
    # The incremental solver must not explore more positions than the
    # naive one (same search order, same memo partitioning).
    assert fast_stats["positions_explored"] <= slow_stats["positions_explored"]


def test_compiled_evaluator_matches_reference():
    from repro.foeq.semantics import p_evaluate

    for sentence in (phi_square(), phi_sorted(), phi_has_factor("ab")):
        program = position_program(sentence)
        for w in words_up_to("ab", 6):
            assert program.evaluate(w, {}) == p_evaluate(w, sentence, {}), (
                sentence,
                w,
            )


def test_compiled_evaluator_state_cache_is_bounded():
    # Programs live process-wide (position_program's lru_cache), so the
    # per-word O(n²) state tables must not accumulate without bound over
    # large sweeps; eviction is LRU, keeping repeated words resident.
    from repro.foeq import compiled
    from repro.foeq.compiled import PositionProgram

    program = PositionProgram(phi_square())
    for i in range(compiled._MAX_STATES + 50):
        word = "ab" * (i % 7 + 1) + "a" * (i // 7)
        program.evaluate(word, {})
    assert len(program._states) <= compiled._MAX_STATES
    # A word evaluated again is served from (and refreshed in) the cache.
    recent = next(reversed(program._states))
    program.evaluate(recent, {})
    assert next(reversed(program._states)) == recent


def test_compiled_evaluator_open_formulas():
    from repro.foeq.semantics import p_evaluate
    from repro.foeq.syntax import FactorEq, PVar

    x1, y1, x2, y2 = PVar("x1"), PVar("y1"), PVar("x2"), PVar("y2")
    eq = FactorEq(x1, y1, x2, y2)
    program = position_program(eq)
    word = "abab"
    for values in itertools.product(range(1, 5), repeat=4):
        sigma = dict(zip((x1, y1, x2, y2), values))
        assert program.evaluate(word, sigma) == p_evaluate(word, eq, dict(sigma))
