"""Tests for the FO[EQ] logic (syntax, semantics, builders, games)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.equivalence import equiv_k
from repro.foeq.builders import (
    phi_first,
    phi_has_factor,
    phi_last,
    phi_sorted,
    phi_square,
    phi_successor,
)
from repro.foeq.games import (
    foeq_distinguishing_rank,
    foeq_equiv_k,
    position_partial_iso,
)
from repro.foeq.semantics import factor_at, p_language_slice, p_models
from repro.foeq.syntax import (
    FactorEq,
    Less,
    PExists,
    PVar,
    SymbolAt,
    p_free_variables,
    p_quantifier_rank,
)

words = st.text(alphabet="ab", max_size=6)
x, y = PVar("x"), PVar("y")


class TestSemantics:
    def test_less(self):
        assert p_models("ab", Less(x, y), {x: 1, y: 2})
        assert not p_models("ab", Less(x, y), {x: 2, y: 1})

    def test_symbol(self):
        assert p_models("ab", SymbolAt("a", x), {x: 1})
        assert not p_models("ab", SymbolAt("a", x), {x: 2})

    def test_factor_eq(self):
        # w = abab: w[1..2] = "ab" = w[3..4].
        f = FactorEq(PVar("x1"), PVar("y1"), PVar("x2"), PVar("y2"))
        sigma = {PVar("x1"): 1, PVar("y1"): 2, PVar("x2"): 3, PVar("y2"): 4}
        assert p_models("abab", f, sigma)
        sigma[PVar("y2")] = 3
        assert not p_models("abab", f, sigma)

    def test_malformed_interval_is_false(self):
        f = FactorEq(PVar("x1"), PVar("y1"), PVar("x2"), PVar("y2"))
        sigma = {PVar("x1"): 2, PVar("y1"): 1, PVar("x2"): 2, PVar("y2"): 1}
        assert not p_models("ab", f, sigma)

    def test_quantifiers_over_positions(self):
        phi = PExists(x, SymbolAt("b", x))
        assert p_models("aab", phi)
        assert not p_models("aaa", phi)
        assert not p_models("", phi)  # empty universe

    def test_factor_at(self):
        assert factor_at("abcd"[:2] + "ab", 1, 2) == "ab"
        assert factor_at("ab", 2, 1) is None
        assert factor_at("ab", 1, 3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            p_models("ab", Less(x, y), {x: 1})
        with pytest.raises(ValueError):
            p_models("ab", Less(x, y), {x: 0, y: 1})


class TestBuilders:
    @given(words)
    def test_sorted(self, w):
        assert p_models(w, phi_sorted()) == ("ba" not in w)

    @given(words)
    def test_square(self, w):
        expected = (
            len(w) > 0
            and len(w) % 2 == 0
            and w[: len(w) // 2] == w[len(w) // 2 :]
        )
        assert p_models(w, phi_square()) == expected

    @given(words)
    def test_has_factor(self, w):
        assert p_models(w, phi_has_factor("ab")) == ("ab" in w)

    def test_first_last_successor(self):
        f = PExists(x, PExists(y, (phi_first(x) & phi_last(y)) & Less(x, y)))
        assert p_models("ab", f)
        assert not p_models("a", f)  # first = last

    def test_rank_bookkeeping(self):
        assert p_quantifier_rank(phi_square()) >= 4
        assert p_free_variables(phi_square()) == frozenset()

    def test_fc_agreement_on_squares(self):
        """FO[EQ]'s φ_square agrees with FC's φ_ww on non-empty words —
        the expressive-equivalence correspondence, extensionally."""
        from repro.fc.builders import phi_ww
        from repro.fc.semantics import models
        from repro.words.generators import words_up_to

        for w in words_up_to("ab", 6):
            if not w:
                continue
            assert p_models(w, phi_square()) == models(w, phi_ww(), "ab")


class TestGames:
    def test_partial_iso_symbol_mismatch(self):
        assert not position_partial_iso("ab", "ba", (1,), (1,))
        assert position_partial_iso("ab", "ba", (1,), (2,))

    def test_partial_iso_eq_pattern(self):
        # abab: [1..2] = [3..4]; abba: [1..2] ≠ [3..4].
        assert not position_partial_iso(
            "abab", "abba", (1, 2, 3, 4), (1, 2, 3, 4)
        )

    @given(words, st.integers(0, 2))
    def test_reflexive(self, w, k):
        assert foeq_equiv_k(w, w, k)

    def test_known_separations(self):
        # Note the contrast with FC: the concatenation relation separates
        # a⁴ from a³ at rank 2, the position signature needs rank 3; a
        # single position move cannot see order, so ab vs ba needs rank 2
        # here while FC's constants already separate at rank ≤ 2 too.
        assert foeq_distinguishing_rank("aaaa", "aaa", 4) == 3
        assert foeq_distinguishing_rank("ab", "ba", 3) == 2

    def test_anbn_witness_survives_in_foeq_too(self):
        """The same (12, 14) witness pair works in FO[EQ] at rank 2 —
        both proof routes share their witnesses."""
        assert foeq_equiv_k("a" * 12 + "b" * 12, "a" * 14 + "b" * 12, 2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.text(alphabet="ab", max_size=3),
        st.text(alphabet="ab", max_size=3),
    )
    def test_fc_equivalence_implies_foeq_at_same_rank_not_required(self, w, v):
        """FC and FO[EQ] have equal expressive power but NOT rank-for-rank:
        the game relations may differ at a fixed k.  This test documents
        the sanity direction we can check: words FO[EQ]-equivalent at
        every rank ≤ 2 and FC-equivalent at every rank ≤ 2 agree on
        equality (trivially when w == v)."""
        if w == v:
            assert foeq_equiv_k(w, v, 2) and equiv_k(w, v, 2, alphabet="ab")


class TestFOLessThan:
    """The plain FO[<] game — showing the EQ relation is essential."""

    def test_eq_strictly_stronger(self):
        from repro.foeq.games import folt_equiv_k, foeq_equiv_k

        # (ab)⁴ is a square, (ab)⁵ is not; FO[<] cannot tell them apart in
        # two rounds, FO[EQ] can within the rank of φ_square.
        w, v = "ab" * 4, "ab" * 5
        assert folt_equiv_k(w, v, 2)
        assert not foeq_equiv_k(w, v, 3)

    def test_square_not_folt_definable_at_rank_2(self):
        """For every rank-2 FO[<] sentence: (ab)⁴ ⊨ φ iff (ab)⁵ ⊨ φ, yet
        exactly one is a square — the Lemma 3.5 pattern, in FO[<]."""
        from repro.foeq.builders import phi_square
        from repro.foeq.games import folt_equiv_k
        from repro.foeq.semantics import p_models

        w, v = "ab" * 4, "ab" * 5
        assert folt_equiv_k(w, v, 2)
        assert p_models(w, phi_square())
        assert not p_models(v, phi_square())

    def test_folt_still_separates_letters(self):
        from repro.foeq.games import folt_distinguishing_rank

        assert folt_distinguishing_rank("aa", "ab", 2) is not None

    def test_folt_weaker_or_equal_everywhere(self):
        from repro.foeq.games import foeq_equiv_k, folt_equiv_k
        from repro.words.generators import words_up_to

        # FO[EQ]-equivalence implies FO[<]-equivalence (more conditions
        # to violate on the EQ side).
        words = [w for w in words_up_to("ab", 3) if w]
        for i, w in enumerate(words):
            for v in words[i + 1 :]:
                if foeq_equiv_k(w, v, 2):
                    assert folt_equiv_k(w, v, 2), (w, v)
