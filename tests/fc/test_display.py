"""Round-trip tests: to_text ∘ parse_fc is the identity on pure FC."""

import pytest
from hypothesis import given, strategies as st

from repro.fc.display import to_text
from repro.fc.parser import parse_fc
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
)

# Variable names must not collide with alphabet letters for the round
# trip (single alphabet letters parse as constants).
VARS = [Var("x0"), Var("y0"), Var("z0")]
TERMS = VARS + [Const("a"), Const("b"), EPSILON]


def atoms():
    plain = st.tuples(
        st.sampled_from(TERMS), st.sampled_from(TERMS), st.sampled_from(TERMS)
    ).map(lambda t: Concat(*t))
    chains = st.tuples(
        st.sampled_from(TERMS),
        st.lists(st.sampled_from(TERMS), min_size=3, max_size=4),
    ).map(lambda t: ConcatChain(t[0], tuple(t[1])))
    return st.one_of(plain, chains)


def formulas():
    def extend(children):
        return (
            children.map(Not)
            | st.tuples(children, children).map(lambda t: And(*t))
            | st.tuples(children, children).map(lambda t: Or(*t))
            | st.tuples(children, children).map(lambda t: Implies(*t))
            | st.tuples(st.sampled_from(VARS), children).map(
                lambda t: Exists(*t)
            )
            | st.tuples(st.sampled_from(VARS), children).map(
                lambda t: Forall(*t)
            )
        )

    return st.recursive(atoms(), extend, max_leaves=5)


class TestRoundTrip:
    @given(formulas())
    def test_parse_of_text_is_identity(self, phi):
        rendered = to_text(phi)
        reparsed = parse_fc(rendered, "ab")
        assert reparsed == phi, rendered

    def test_paper_formulas_round_trip(self):
        from repro.fc.builders import phi_no_cube, phi_vbv, phi_ww

        for phi in (phi_no_cube(), phi_vbv(), phi_ww()):
            assert parse_fc(to_text(phi), "ab") == phi

    def test_synthesised_certificates_round_trip(self):
        from repro.ef.synthesis import synthesize_distinguishing_sentence

        phi = synthesize_distinguishing_sentence("aaaa", "aaa", 2, "a")
        assert parse_fc(to_text(phi), "a") == phi

    def test_epsilon_rendering(self):
        x = Var("x0")
        assert to_text(Concat(x, EPSILON, EPSILON)) == "(x0 = eps.eps)"
        assert to_text(Concat(x, x, EPSILON)) == "(x0 = x0)"

    def test_unprintable_nodes_rejected(self):
        from repro.fcreg.constraints import in_regex

        with pytest.raises(ValueError):
            to_text(in_regex(Var("x0"), "a*"))
