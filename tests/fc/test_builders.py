"""Tests for the paper's concrete formulas (Examples 2.4, Prop 3.7, 4.1…)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fc.builders import (
    phi_contains_letter,
    phi_copy,
    phi_epsilon,
    phi_equals_word,
    phi_fib,
    phi_in_finite_language,
    phi_is_prefix,
    phi_is_suffix,
    phi_k_copies,
    phi_no_cube,
    phi_vbv,
    phi_w_star,
    phi_whole_word,
    phi_ww,
)
from repro.fc.semantics import models, satisfying_assignments
from repro.fc.syntax import Var, quantifier_rank
from repro.words.fibonacci import is_l_fib, l_fib_word
from repro.words.generators import words_up_to

x, y = Var("x"), Var("y")
words = st.text(alphabet="ab", max_size=6)


class TestWholeWord:
    """Example 2.4's φ_w(x): pins σ(x) to the entire input word."""

    @given(words)
    def test_unique_satisfier_is_the_word(self, w):
        results = list(satisfying_assignments(w, phi_whole_word(x), "ab"))
        assert results == [{x: w}]


class TestWW:
    """Example 2.4's φ_ww: the squares {ww}."""

    @given(words)
    def test_against_oracle(self, w):
        expected = len(w) % 2 == 0 and w[: len(w) // 2] == w[len(w) // 2:]
        assert models(w, phi_ww(), "ab") == expected


class TestCopyRelations:
    """Example 2.4: R_copy and R_{k-copies}."""

    @given(words)
    def test_copy(self, w):
        pairs = {
            (s[x], s[y])
            for s in satisfying_assignments(w, phi_copy(x, y), "ab")
        }
        for u, v in pairs:
            assert u == v + v

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_k_copies(self, k):
        w = "aaaaaaaa"
        pairs = {
            (s[x], s[y])
            for s in satisfying_assignments(w, phi_k_copies(x, y, k), "ab")
        }
        assert pairs  # never empty: ε = ε^k
        for u, v in pairs:
            assert u == v * k

    def test_negative_k(self):
        with pytest.raises(ValueError):
            phi_k_copies(x, y, -1)


class TestNoCube:
    """The introduction's cube-freeness sentence."""

    def test_rank_is_three(self):
        assert quantifier_rank(phi_no_cube()) == 3

    @given(words)
    def test_against_oracle(self, w):
        from repro.words.fibonacci import contains_kth_power

        assert models(w, phi_no_cube(), "ab") == (not contains_kth_power(w, 3))


class TestVBV:
    """Prop 3.7's rank-5 sentence for {v·b·v}."""

    def test_rank_is_five(self):
        assert quantifier_rank(phi_vbv()) == 5

    @given(words)
    def test_against_oracle(self, w):
        expected = any(
            w == v + "b" + v
            for v in [w[:i] for i in range(len(w) + 1)]
        )
        assert models(w, phi_vbv(), "ab") == expected

    def test_separates_congruence_counterexample(self):
        # a^p b a^p ⊨ φ but a^q b a^p ⊭ φ — the Prop 3.7 separation.
        phi = phi_vbv()
        assert models("aabaa", phi, "ab")
        assert not models("aaabaa", phi, "ab")


class TestEqualsAndFinite:
    def test_equals_word(self):
        phi = phi_equals_word(x, "aba")
        results = [s[x] for s in satisfying_assignments("ababa", phi, "ab")]
        assert results == ["aba"]

    def test_equals_epsilon(self):
        phi = phi_equals_word(x, "")
        results = [s[x] for s in satisfying_assignments("ab", phi, "ab")]
        assert results == [""]

    def test_finite_language(self):
        phi = phi_in_finite_language(x, ["a", "bb"])
        results = {s[x] for s in satisfying_assignments("abba", phi, "ab")}
        assert results == {"a", "bb"}

    def test_empty_finite_language_rejected(self):
        with pytest.raises(ValueError):
            phi_in_finite_language(x, [])


class TestPrefixSuffixFactor:
    @given(words)
    def test_prefix(self, w):
        phi = phi_is_prefix(x, y)
        pairs = {
            (s[x], s[y]) for s in satisfying_assignments(w, phi, "ab")
        }
        for u, v in pairs:
            assert v.startswith(u)

    @given(words)
    def test_suffix(self, w):
        phi = phi_is_suffix(x, y)
        pairs = {
            (s[x], s[y]) for s in satisfying_assignments(w, phi, "ab")
        }
        for u, v in pairs:
            assert v.endswith(u)

    def test_contains_letter(self):
        phi = phi_contains_letter(x, "b")
        results = {s[x] for s in satisfying_assignments("aba", phi, "ab")}
        assert results == {"b", "ab", "ba", "aba"}


class TestWStar:
    """Lemma 5.4's commutation construction for w*."""

    @pytest.mark.parametrize("base", ["a", "ab", "ba", "aab"])
    def test_against_oracle(self, base):
        phi = phi_w_star(x, base)
        host = base * 4
        results = {s[x] for s in satisfying_assignments(host, phi, "ab")}
        expected = {base * i for i in range(5)}
        assert results == expected

    def test_epsilon_base(self):
        phi = phi_w_star(x, "")
        results = {s[x] for s in satisfying_assignments("ab", phi, "ab")}
        assert results == {""}


class TestFib:
    """Prop 4.1: L(φ_fib) = L_fib."""

    @pytest.mark.parametrize("n", range(5))
    def test_members(self, n):
        assert models(l_fib_word(n), phi_fib(), "abc")

    @pytest.mark.parametrize(
        "bad",
        ["", "c", "cc", "ca", "cac" + "ab", "cacabcab", "cacabcbac",
         "cacabcabacab", "cacabcabacc"],
    )
    def test_non_members(self, bad):
        assert not models(bad, phi_fib(), "abc")

    @settings(deadline=None)
    @given(st.text(alphabet="abc", max_size=7))
    def test_exhaustive_small_words(self, w):
        assert models(w, phi_fib(), "abc") == is_l_fib(w)

    def test_agreement_exhaustive_short(self):
        # Exhaustive over Σ^{≤6} (~1100 words); bench E05 pushes further.
        phi = phi_fib()
        for w in words_up_to("abc", 6):
            assert models(w, phi, "abc") == is_l_fib(w), w
