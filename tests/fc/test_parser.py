"""Tests for the FC text parser."""

import pytest

from repro.fc.parser import FCParseError, parse_fc
from repro.fc.semantics import models, satisfying_assignments
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Implies,
    Not,
    Var,
    free_variables,
    quantifier_rank,
)


class TestAtoms:
    def test_binary_atom(self):
        phi = parse_fc("(x = y.z)", "ab")
        assert phi == Concat(Var("x"), Var("y"), Var("z"))

    def test_unary_rhs_pads_epsilon(self):
        phi = parse_fc("(x = y)", "ab")
        assert phi == Concat(Var("x"), Var("y"), EPSILON)

    def test_epsilon_constant(self):
        phi = parse_fc("(x = eps)", "ab")
        assert phi == Concat(Var("x"), EPSILON, EPSILON)

    def test_unicode_epsilon(self):
        assert parse_fc("(x = ε)", "ab") == parse_fc("(x = eps)", "ab")

    def test_letter_constants(self):
        phi = parse_fc("(x = a.b)", "ab")
        assert phi == Concat(Var("x"), Const("a"), Const("b"))

    def test_letters_outside_alphabet_are_variables(self):
        phi = parse_fc("(x = c.c)", "ab")
        assert phi == Concat(Var("x"), Var("c"), Var("c"))

    def test_chain_atom(self):
        phi = parse_fc("(x = a.y.b)", "ab")
        assert phi == ConcatChain(
            Var("x"), (Const("a"), Var("y"), Const("b"))
        )


class TestConnectivesAndQuantifiers:
    def test_quantifier_block(self):
        phi = parse_fc("E x y: (x = y.y)", "ab")
        assert isinstance(phi, Exists)
        assert isinstance(phi.inner, Exists)
        assert quantifier_rank(phi) == 2

    def test_forall(self):
        phi = parse_fc("A z: (z = z)", "ab")
        assert isinstance(phi, Forall)

    def test_precedence(self):
        # ~ binds tighter than &, & tighter than |, | tighter than ->.
        phi = parse_fc("~(x = a) & (x = b) | (x = eps) -> (x = x)", "ab")
        assert isinstance(phi, Implies)

    def test_unicode_connectives(self):
        ascii_version = parse_fc("~(x = a) & (y = b)", "ab")
        unicode_version = parse_fc("¬(x ≐ a) ∧ (y ≐ b)", "ab")
        assert ascii_version == unicode_version

    def test_paper_intro_formula(self):
        """The introduction's cube-freeness sentence, from text."""
        phi = parse_fc(
            "A z: (~(z = eps) -> ~E x y: ((x = z.y) & (y = z.z)))", "ab"
        )
        assert quantifier_rank(phi) == 3
        assert not free_variables(phi)
        assert models("aab", phi, "ab")
        assert not models("aaa", phi, "ab")

    def test_parsed_formula_evaluates(self):
        phi = parse_fc("E x: E y: ((x = y.y) & ~(y = eps))", "ab")
        assert models("abab", phi, "ab")
        assert not models("aba", phi, "ab")

    def test_open_formula(self):
        phi = parse_fc("(x = y.y)", "ab")
        pairs = {
            (s[Var("x")], s[Var("y")])
            for s in satisfying_assignments("aaaa", phi, "ab")
        }
        assert ("aa", "a") in pairs


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(x = )",
            "(x y)",
            "E : (x = x)",
            "E a: (a = a)",  # quantifying a constant
            "(x = y.z",
            "(x = y) extra",
            "~",
            "(x = y..z)",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(FCParseError):
            parse_fc(bad, "ab")

    def test_error_mentions_position(self):
        with pytest.raises(FCParseError, match="position"):
            parse_fc("(x = y) (z = z)", "ab")
