"""Tests for concatenation sugar: eq_concat splitting, chains, desugaring."""

import pytest
from hypothesis import given, strategies as st

from repro.fc.semantics import evaluate, models, satisfying_assignments
from repro.fc.structures import word_structure
from repro.fc.sugar import (
    FreshVariables,
    chain,
    desugar_chains,
    eq_concat,
    eq_terms,
    split_word,
)
from repro.fc.syntax import (
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Var,
    free_variables,
    quantifier_rank,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestFreshVariables:
    def test_distinct_within_instance(self):
        fresh = FreshVariables()
        assert fresh.fresh() != fresh.fresh()

    def test_distinct_across_instances(self):
        a, b = FreshVariables("t"), FreshVariables("t")
        assert a.fresh() != b.fresh()


class TestSplitWord:
    def test_empty(self):
        assert split_word("") == [EPSILON]

    def test_letters(self):
        assert split_word("ab") == [Const("a"), Const("b")]


class TestEqConcat:
    def test_binary_stays_binary(self):
        phi = eq_concat(x, [y, z])
        assert phi == Concat(x, y, z)

    def test_single_term(self):
        phi = eq_concat(x, [y])
        assert phi == Concat(x, y, EPSILON)

    def test_long_chain_introduces_links(self):
        phi = eq_concat(x, [y, z, y])
        assert isinstance(phi, Exists)
        assert free_variables(phi) == {x, y, z}
        assert quantifier_rank(phi) == 1

    def test_word_splitting(self):
        phi = eq_concat(x, ["ab", y])
        # a, b, y — three terms, one link.
        assert quantifier_rank(phi) == 1

    @given(st.text(alphabet="ab", min_size=1, max_size=5))
    def test_semantics_of_word_equality(self, w):
        phi = eq_concat(x, [w])
        host = "a" + w + "b"
        results = {s[x] for s in satisfying_assignments(host, phi, "ab")}
        assert results == {w}

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            eq_concat(x, [])

    def test_long_lhs_rejected(self):
        with pytest.raises(ValueError):
            eq_concat("ab", [x])

    def test_eq_terms(self):
        phi = eq_terms(x, y)
        assert phi == Concat(x, y, EPSILON)


class TestChain:
    def test_chain_node_for_three_plus(self):
        phi = chain(x, [y, "b", y])
        assert isinstance(phi, ConcatChain)

    def test_chain_binary_shortcut(self):
        assert chain(x, [y, z]) == Concat(x, y, z)

    @given(
        st.text(alphabet="ab", min_size=1, max_size=3),
        st.text(alphabet="ab", min_size=1, max_size=3),
        st.text(alphabet="ab", max_size=3),
    )
    def test_chain_matches_desugared(self, u, v, w):
        """Native chains and their binary splitting are semantically equal."""
        phi_chain = chain(x, [u, y, v])
        phi_binary = desugar_chains(phi_chain)
        host = u + "ab" + v + w
        structure = word_structure(host, "ab")
        pool = sorted(structure.universe_factors, key=lambda f: (len(f), f))
        for vx in pool[:8] + pool[-4:]:
            for vy in pool[:8]:
                sigma = {x: vx, y: vy}
                assert evaluate(structure, phi_chain, dict(sigma)) == (
                    evaluate(structure, phi_binary, dict(sigma))
                )

    def test_desugar_leaves_plain_nodes(self):
        phi = Exists(x, Concat(x, y, z))
        assert desugar_chains(phi) == phi

    def test_desugar_rank_increase(self):
        phi = chain(x, [y, "b", y, "b"])
        assert quantifier_rank(phi) == 0
        assert quantifier_rank(desugar_chains(phi)) >= 1
