"""Tests for FC model checking (Section 2 semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fc.semantics import (
    FCLanguage,
    defines_language_member,
    language_slice,
    languages_agree,
    models,
    satisfying_assignments,
)
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Not,
    Or,
    Var,
)

x, y, z = Var("x"), Var("y"), Var("z")
A, B = Const("a"), Const("b")


class TestAtomSemantics:
    def test_concat_atom(self):
        phi = Concat(x, y, z)
        assert models("ab", phi, "ab", {x: "ab", y: "a", z: "b"})
        assert not models("ab", phi, "ab", {x: "ab", y: "b", z: "a"})

    def test_constant_atoms(self):
        phi = Concat(x, A, B)
        assert models("ab", phi, "ab", {x: "ab"})
        assert not models("ba", phi, "ab", {x: "ba"})

    def test_absent_constant_makes_atom_false(self):
        phi = Concat(x, A, B)  # b does not occur in "aa"
        assert not models("aa", phi, "ab", {x: "aa"})

    def test_epsilon_shorthand(self):
        phi = Concat(x, EPSILON, EPSILON)
        assert models("ab", phi, "ab", {x: ""})
        assert not models("ab", phi, "ab", {x: "a"})

    def test_chain_atom(self):
        phi = ConcatChain(x, (y, B, y))
        assert models("aba", phi, "ab", {x: "aba", y: "a"})
        assert not models("aba", phi, "ab", {x: "aba", y: "b"})

    def test_unassigned_free_variable_rejected(self):
        with pytest.raises(ValueError):
            models("ab", Concat(x, y, z), "ab", {x: "ab"})

    def test_non_factor_assignment_rejected(self):
        with pytest.raises(ValueError):
            models("ab", Concat(x, x, x), "ab", {x: "bb"})


class TestQuantifiers:
    def test_exists(self):
        # some factor is a square of a non-empty word
        phi = Exists(x, Exists(y, And(Concat(x, y, y), Not(Concat(y, EPSILON, EPSILON)))))
        assert models("aa", phi, "ab")
        assert not models("ab", phi, "ab")

    def test_forall(self):
        # every factor is a prefix (true only for unary-ish words)
        phi = Forall(x, Exists(y, Exists(z, Concat(y, x, z))))
        assert models("aaa", phi, "ab")

    def test_quantifiers_range_over_factors_only(self):
        # ∃x: x ≐ b·b — no bb factor in "bab"
        phi = Exists(x, Concat(x, B, B))
        assert not models("bab", phi, "ab")
        assert models("abb", phi, "ab")

    def test_shadowing(self):
        inner = Exists(x, Concat(x, A, A))  # some factor aa
        phi = Exists(x, And(Concat(x, B, EPSILON), inner))
        assert models("baa", phi, "ab")


class TestSatisfyingAssignments:
    def test_domain_is_free_variables(self):
        phi = Concat(x, y, y)
        for sigma in satisfying_assignments("aa", phi, "ab"):
            assert set(sigma) == {x, y}

    def test_copy_relation(self):
        phi = Concat(x, y, y)
        results = {
            (sigma[x], sigma[y])
            for sigma in satisfying_assignments("aaaa", phi, "ab")
        }
        assert ("aa", "a") in results
        assert ("aaaa", "aa") in results
        assert ("", "") in results
        assert all(u == v + v for u, v in results)

    def test_sentence_has_empty_assignment(self):
        phi = Exists(x, Concat(x, EPSILON, EPSILON))
        assignments = list(satisfying_assignments("a", phi, "ab"))
        assert assignments == [{}]


class TestLanguages:
    def test_language_slice(self):
        # sentence: input contains the factor aa
        phi = Exists(x, Concat(x, A, A))
        slice_ = language_slice(phi, "ab", 3)
        assert "aa" in slice_
        assert "baa" in slice_
        assert "aba" not in slice_

    def test_open_formula_rejected(self):
        with pytest.raises(ValueError):
            defines_language_member("a", Concat(x, x, x), "ab")
        with pytest.raises(ValueError):
            FCLanguage(Concat(x, x, x), "ab")

    def test_languages_agree(self):
        phi = Exists(x, Concat(x, A, A))
        psi = Exists(y, Concat(y, A, A))
        assert languages_agree(phi, psi, "ab", 4)

    def test_languages_disagree(self):
        phi = Exists(x, Concat(x, A, A))
        psi = Exists(x, Concat(x, B, B))
        assert not languages_agree(phi, psi, "ab", 3)

    def test_fclanguage_interface(self):
        lang = FCLanguage(Exists(x, Concat(x, A, A)), "ab", name="has-aa")
        assert "aa" in lang
        assert "ab" not in lang
        oracle = {"aa", "aaa", "aab", "baa", "aaaa"}  # not complete; only shape

        class HasAA:
            def __contains__(self, w):
                return "aa" in w

        assert lang.agrees_with(HasAA(), 4)
        assert lang.first_disagreement(HasAA(), 4) is None
