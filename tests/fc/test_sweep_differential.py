"""Differential check: batched sweep evaluation vs per-word membership.

``defines_language_members`` (the repro.fc.sweep fast path) must return
exactly what per-word ``defines_language_member`` returns — over full
small grids for a pool of structurally diverse sentences (quantifier
alternation, negation, chains, regex constraints, oracle atoms, the
ψ-reductions) and over seeded longer samples.  Sentences outside the
sweep fragment must fall back to the per-word path transparently.
"""

import random

import pytest

from repro.core.relations import PSI_REDUCTIONS, oracle_for
from repro.fc import builders as B
from repro.fc.builders import chain, exists_many
from repro.fc.semantics import (
    FCLanguage,
    defines_language_member,
    defines_language_members,
    language_signatures,
    language_slice,
    languages_agree,
)
from repro.fc.sweep import LanguageSweep
from repro.fc.syntax import And, Concat, Const, Exists, Forall, Implies, Not, Or, Var
from repro.fcreg.constraints import in_regex
from repro.words.generators import PAPER_LANGUAGES, words_up_to

SEED = 20260806
X, Y, U = Var("x"), Var("y"), Var("u")


def _sentence_pool():
    return {
        "ww": B.phi_ww(),
        "no_cube": B.phi_no_cube(),
        "vbv": B.phi_vbv("b"),
        "whole_eq": Exists(U, And(B.phi_whole_word(U), B.phi_equals_word(U, "abba"))),
        "w_star": Exists(U, And(B.phi_whole_word(U), B.phi_w_star(U, "ab"))),
        "prefsuf": Exists(
            U,
            And(
                B.phi_whole_word(U),
                Forall(X, Or(B.phi_is_prefix(X, U), B.phi_is_suffix(X, U))),
            ),
        ),
        "k_copies": exists_many(
            [X, Y], And(B.phi_whole_word(X), B.phi_k_copies(X, Y, 3))
        ),
        "regex_pos": Exists(
            X, And(in_regex(X, "(ab)*"), Exists(Y, Concat(Y, X, X)))
        ),
        "regex_neg": Not(
            Exists(
                X,
                And(Not(Concat(X, Const(""), Const(""))), in_regex(X, "a*b")),
            )
        ),
        "chain": exists_many([X, Y], chain(X, [Y, Const("a"), Y])),
        "implies": Forall(
            X,
            Implies(in_regex(X, "aa*"), Exists(Y, Concat(Y, X, Const("a")))),
        ),
        # Absent-letter Const heads: on words without 'a' the span/chain
        # pool generators produce candidates outside the word's factor
        # universe, and the pure regex disjunct would accept them if the
        # quantifier scan failed to restrict to the domain (regression:
        # sweep=True vs per-word=False on "b").
        "absent_const_span_regex": Exists(
            Y, Or(Concat(Const("a"), Y, Const("")), in_regex(Y, "a"))
        ),
        "absent_const_chain_regex": Exists(
            Y, Or(chain(Const("a"), [Y]), in_regex(Y, "a"))
        ),
    }


def _assert_agree(sentence, alphabet, words):
    batched = dict(defines_language_members(sentence, alphabet, words))
    for word in words:
        assert batched[word] == defines_language_member(
            word, sentence, alphabet
        ), word


@pytest.mark.parametrize("name", sorted(_sentence_pool()))
def test_full_grid_up_to_length_6(name):
    sentence = _sentence_pool()[name]
    _assert_agree(sentence, "ab", list(words_up_to("ab", 6)))


@pytest.mark.parametrize("name", sorted(_sentence_pool()))
def test_seeded_length_7_and_8_samples(name):
    rng = random.Random(SEED)
    words = [
        "".join(rng.choice("ab") for _ in range(rng.choice((7, 8))))
        for _ in range(30)
    ]
    _assert_agree(_sentence_pool()[name], "ab", words)


def test_phi_fib_over_abc_grid():
    _assert_agree(B.phi_fib(), "abc", list(words_up_to("abc", 5)))


@pytest.mark.parametrize("relation", ["Add", "Mult", "Rev"])
def test_psi_reductions_agree(relation):
    reduction = PSI_REDUCTIONS[relation]
    alphabet = PAPER_LANGUAGES[reduction.target_language].alphabet
    psi = reduction.build(oracle_for(relation))
    _assert_agree(psi, alphabet, list(words_up_to(alphabet, 5)))


def test_absent_letter_const_pool_restricted_to_domain():
    # Const terms resolve to *global* gids inside pool generators, so a
    # letter absent from the word yields pool candidates that are not
    # factors of the word.  These must be filtered out before the
    # quantifier scan: quantifiers range over the word's factors, and an
    # assignment-pure disjunct (here the regex) holds at the non-domain
    # value 'a'.  Both sentences stay inside the sweep fragment — no
    # fallback masks the bug.
    for sentence in (
        Exists(Y, Or(Concat(Const("a"), Y, Const("")), in_regex(Y, "a"))),
        Exists(Y, Or(chain(Const("a"), [Y]), in_regex(Y, "a"))),
    ):
        sweep = LanguageSweep("ab")
        program = sweep.compile(sentence)
        assert program is not None
        assert program.evaluate(sweep.family.table("b")) is False
        assert defines_language_member("b", sentence, "ab") is False


def test_word_view_constant_raises():
    # _WordView.constant is word-dependent (⊥ when the letter is
    # absent), but pure-atom results are memoised family-wide; an atom
    # consulting it must fail loudly instead of poisoning the memo.
    from repro.fc.sweep import _WordView

    view = _WordView("ab", "ab")
    with pytest.raises(TypeError):
        view.constant("a")


def test_const_subject_regex_falls_back():
    # A Const-subject constraint reads the structure (⊥ when the letter
    # is absent), so it is not assignment-pure: compile must refuse and
    # the front-end must fall back with identical results.
    sentence = Exists(X, And(Concat(X, X, X), in_regex("a", "a")))
    assert LanguageSweep("ab").compile(sentence) is None
    _assert_agree(sentence, "ab", list(words_up_to("ab", 4)))


def test_impure_extension_atom_falls_back():
    from repro.fc.syntax import Formula

    class StructurePeeking(Formula):
        """Extension atom without ``_assignment_pure``: reads the word."""

        def _evaluate(self, structure, assignment):
            return len(structure.word) % 2 == 0

        def _quantifier_rank(self):
            return 0

        def _atom_terms(self):
            yield X

    sentence = Exists(X, And(Concat(X, Const(""), Const("")), StructurePeeking()))
    assert LanguageSweep("ab").compile(sentence) is None


def test_front_ends_route_through_sweep():
    ww = B.phi_ww()
    per_word = frozenset(
        w
        for w in words_up_to("ab", 6)
        if defines_language_member(w, ww, "ab")
    )
    assert language_slice(ww, "ab", 6) == per_word
    assert languages_agree(ww, ww, "ab", 5)
    assert not languages_agree(ww, B.phi_no_cube(), "ab", 5)
    language = FCLanguage(ww, "ab")
    assert language.slice(6) == per_word
    assert language.agrees_with(per_word, 6)
    assert language.first_disagreement(frozenset(), 6) == ""


def test_language_signatures_match_per_sentence_membership():
    pool = [B.phi_ww(), B.phi_no_cube(), B.phi_vbv("b")]
    words = list(words_up_to("ab", 5))
    for word, signature in language_signatures(pool, "ab", words):
        expected = tuple(
            defines_language_member(word, sentence, "ab") for sentence in pool
        )
        assert signature == expected, word


def test_enumeration_order_is_preserved():
    words = list(words_up_to("ab", 3))
    out = [w for w, _ in defines_language_members(B.phi_ww(), "ab", words)]
    assert out == words


def test_open_formula_rejected_eagerly():
    with pytest.raises(ValueError):
        defines_language_members(Concat(X, X, X), "ab", ["a"])
    with pytest.raises(ValueError):
        language_signatures([Concat(X, X, X)], "ab", ["a"])
