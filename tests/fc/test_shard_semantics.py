"""Shard-restricted sweep semantics: partition, merge, bit-identity.

Three layers under test: the shard-plan builders partition the word
grid exactly (every word of ``Σ^{≤n}`` in exactly one shard), the
ordered merge restores global ``(len, text)`` enumeration order, and
``defines_language_members_shard`` returns — shard by shard — exactly
the verdicts of the monolithic ``defines_language_members`` sweep.
"""

import pytest

from repro.engine.shards import length_band_plan, round_robin, subtree_plan
from repro.fc import builders as B
from repro.fc.semantics import (
    defines_language_members,
    defines_language_members_shard,
    merge_shard_rows,
    shard_words,
)
from repro.kernel import stats as kernel_stats
from repro.words.generators import words_up_to


# -- plan builders partition the grid exactly --------------------------------


@pytest.mark.parametrize("width", [1, 2, 3, 4, 7])
@pytest.mark.parametrize("alphabet,max_length", [("ab", 5), ("abc", 4)])
def test_subtree_plan_partitions_the_grid(alphabet, max_length, width):
    plan = subtree_plan(alphabet, max_length, width)
    assert 1 <= len(plan) <= max(1, width)
    owned = [
        word
        for shard in plan
        for word in shard_words(alphabet, max_length, shard)
    ]
    assert sorted(owned, key=lambda w: (len(w), w)) == list(
        words_up_to(alphabet, max_length)
    )
    assert len(owned) == len(set(owned)), "a word is owned by two shards"
    # Stems (words below the cut depth, including ε) belong to shard 0.
    if len(plan) > 1:
        assert "" in plan[0]["stems"]
        assert all(not shard["stems"] for shard in plan[1:])


@pytest.mark.parametrize("width", [1, 2, 3, 5])
def test_length_band_plan_partitions_unary_grid(width):
    max_length = 9
    plan = length_band_plan("a", max_length, width)
    owned = [
        word for shard in plan for word in shard_words("a", max_length, shard)
    ]
    assert sorted(owned, key=len) == list(words_up_to("a", max_length))
    assert len(owned) == len(set(owned))
    # Bands enumerate ascending within each shard.
    for shard in plan:
        assert shard["lengths"] == sorted(shard["lengths"])


def test_subtree_plan_falls_through_to_length_bands_on_unary():
    assert subtree_plan("a", 6, 3) == length_band_plan("a", 6, 3)


def test_degenerate_plans_stay_single_shard():
    assert subtree_plan("ab", 5, 1) == [{"stems": [], "prefixes": [""]}]
    assert subtree_plan("ab", 0, 4) == [{"stems": [], "prefixes": [""]}]
    assert length_band_plan("a", 4, 1) == [{"lengths": [0, 1, 2, 3, 4]}]


def test_round_robin_deals_deterministically():
    assert round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]
    assert round_robin([1, 2], 5) == [[1], [2]]
    assert round_robin([], 3) == [[]]


# -- ordered merge ------------------------------------------------------------


def test_merge_shard_rows_restores_enumeration_order():
    plan = subtree_plan("ab", 4, 3)
    parts = [list(shard_words("ab", 4, shard)) for shard in plan]
    assert merge_shard_rows(parts) == list(words_up_to("ab", 4))


def test_merge_shard_rows_keys_on_leading_word():
    parts = [[("a", 1), ("aa", 2)], [("b", 3)], [("", 0)]]
    assert merge_shard_rows(parts) == [("", 0), ("a", 1), ("b", 3), ("aa", 2)]


# -- shard-restricted sweeps are bit-identical --------------------------------


@pytest.mark.parametrize("width", [2, 3, 4])
def test_members_shard_matches_monolithic_sweep(width):
    sentence, alphabet, max_length = B.phi_ww(), "ab", 5
    monolithic = list(
        defines_language_members(
            sentence, alphabet, words_up_to(alphabet, max_length)
        )
    )
    parts = [
        list(
            defines_language_members_shard(sentence, alphabet, max_length, shard)
        )
        for shard in subtree_plan(alphabet, max_length, width)
    ]
    assert merge_shard_rows(parts) == monolithic


def test_members_shard_matches_on_fallback_sentences():
    # phi_fib sits outside the sweep fragment for some alphabets; the
    # shard path must fall back per-word with identical verdicts.
    sentence, alphabet, max_length = B.phi_fib(), "abc", 4
    monolithic = list(
        defines_language_members(
            sentence, alphabet, words_up_to(alphabet, max_length)
        )
    )
    parts = [
        list(
            defines_language_members_shard(sentence, alphabet, max_length, shard)
        )
        for shard in subtree_plan(alphabet, max_length, 3)
    ]
    assert merge_shard_rows(parts) == monolithic


def test_unary_band_shard_matches_monolithic():
    from repro.fc.syntax import And, Exists, Var

    u = Var("u")
    sentence = Exists(u, And(B.phi_whole_word(u), B.phi_w_star(u, "aa")))
    monolithic = list(
        defines_language_members(sentence, "a", words_up_to("a", 8))
    )
    parts = [
        list(defines_language_members_shard(sentence, "a", 8, shard))
        for shard in length_band_plan("a", 8, 3)
    ]
    assert merge_shard_rows(parts) == monolithic


# -- overhead accounting -------------------------------------------------------


def test_duplicated_stem_work_lands_in_overhead_counter():
    """Re-deriving a subtree's stem path must not inflate real counters:
    it is rerouted to ``shard_overhead_ops`` by the kernel stats shim."""
    sentence, alphabet, max_length = B.phi_ww(), "ab", 5
    plan = subtree_plan(alphabet, max_length, 4)
    non_stem = [shard for shard in plan if not shard["stems"]]
    assert non_stem, "plan has no stem-free shard to measure"
    before = kernel_stats.snapshot()
    list(
        defines_language_members_shard(
            sentence, alphabet, max_length, non_stem[0]
        )
    )
    delta = kernel_stats.diff(before, kernel_stats.snapshot())
    assert delta.get("shard_overhead_ops", 0) > 0


def test_overhead_context_reroutes_and_restores():
    before = kernel_stats.snapshot()
    with kernel_stats.shard_overhead():
        kernel_stats.record("consistency_checks")
        kernel_stats.record("shard_overhead_ops")
    kernel_stats.record("consistency_checks")
    delta = kernel_stats.diff(before, kernel_stats.snapshot())
    assert delta.get("consistency_checks") == 1
    assert delta.get("shard_overhead_ops") == 2
