"""Differential tests: batched relational sweeps vs per-word enumeration.

``satisfying_tuples`` (the ``SweepProgram.relation`` bitset scan) must
yield, word for word AND row for row, exactly what the per-word oracle
``satisfying_assignments`` enumerates — same tuples, same order — over
a pool of open formulas covering quantifier alternation, negation,
regex constraints, absent-letter constants and out-of-fragment
fallbacks.  A second group checks the ``sweep-relation`` store artifact
round-trip: the hydrated grid is bit-identical to the cold scan.
"""

import random

import pytest

from repro.fc import builders as B
from repro.fc.builders import chain
from repro.fc.semantics import (
    satisfying_assignments,
    satisfying_tuples,
)
from repro.fc.relations import FCRelation, defines_relation
from repro.fc.sweep import LanguageSweep
from repro.fc.syntax import (
    And,
    Concat,
    Const,
    Exists,
    Forall,
    Not,
    Or,
    Var,
    free_variables,
)
from repro.fcreg.constraints import in_regex
from repro.kernel import stats as kernel_stats
from repro.store import runtime as store_runtime
from repro.store.backends import MemoryBackend
from repro.store.core import ArtifactStore
from repro.words.generators import words_up_to

SEED = 20260809
X, Y, Z, U = Var("x"), Var("y"), Var("z"), Var("u")


def _formula_pool():
    return {
        # x is a square factor.
        "square": Exists(Y, Concat(X, Y, Y)),
        # (x, y) with x·y a factor and y nonempty.
        "concat_pair": And(
            Exists(Z, Concat(Z, X, Y)), Not(Concat(Y, Const(""), Const("")))
        ),
        # x a factor avoiding 'b' via regex (extension atom).
        "regex_only_a": in_regex(X, "a*"),
        # Regex plus structure: x in (ab)* and xx a factor.
        "regex_square": And(in_regex(X, "(ab)*"), Exists(Y, Concat(Y, X, X))),
        # Absent-letter Const head with an assignment-pure disjunct —
        # the regression shape from the sweep differential suite, now
        # with y free: non-domain pool candidates must never surface as
        # relation rows.
        "absent_const_span": Or(
            Concat(Const("a"), Y, Const("")), in_regex(Y, "a")
        ),
        "absent_const_chain": Or(chain(Const("a"), [Y]), in_regex(Y, "a")),
        # Universal inner quantifier: x whose every prefix is also a
        # suffix of x (unary words, ε).
        "all_prefix": Forall(
            U, Or(Not(B.phi_is_prefix(U, X)), B.phi_is_suffix(U, X))
        ),
        # Three free variables, chain sugar.
        "triple_chain": chain(X, [Y, Const("a"), Z]),
    }


def _oracle_rows(formula, alphabet, word, order=None):
    names = order or tuple(
        sorted(free_variables(formula), key=lambda v: v.name)
    )
    return [
        tuple(sigma[v] for v in names)
        for sigma in satisfying_assignments(word, formula, alphabet)
    ]


def _assert_rows_agree(formula, alphabet, words):
    batched = dict(satisfying_tuples(formula, alphabet, words))
    for word in words:
        # Row-for-row: same tuples in the oracle's enumeration order.
        assert batched[word] == _oracle_rows(formula, alphabet, word), word


@pytest.mark.parametrize("name", sorted(_formula_pool()))
def test_full_grid_up_to_length_4(name):
    _assert_rows_agree(_formula_pool()[name], "ab", list(words_up_to("ab", 4)))


@pytest.mark.parametrize("name", ["square", "concat_pair", "regex_square"])
def test_seeded_longer_samples(name):
    rng = random.Random(SEED)
    words = [
        "".join(rng.choice("ab") for _ in range(rng.choice((5, 6))))
        for _ in range(12)
    ]
    _assert_rows_agree(_formula_pool()[name], "ab", words)


def test_sentence_rows_are_unit_or_empty():
    ww = B.phi_ww()
    grid = dict(satisfying_tuples(ww, "ab", list(words_up_to("ab", 4))))
    for word, rows in grid.items():
        member = bool(_oracle_rows(ww, "ab", word) == [()])
        assert rows == ([()] if member else []), word


def test_variables_permutation_projects_columns():
    formula = _formula_pool()["concat_pair"]
    words = list(words_up_to("ab", 3))
    default = dict(satisfying_tuples(formula, "ab", words))
    swapped = dict(
        satisfying_tuples(formula, "ab", words, variables=(Y, X))
    )
    for word in words:
        assert swapped[word] == [(y, x) for x, y in default[word]], word


def test_variables_must_be_a_permutation():
    formula = _formula_pool()["square"]
    with pytest.raises(ValueError):
        list(satisfying_tuples(formula, "ab", ["a"], variables=(X, Y)))


def test_out_of_fragment_falls_back_identically():
    # Const-subject constraint: not assignment-pure, compile refuses.
    formula = And(Concat(X, X, X), in_regex("a", "a"))
    assert LanguageSweep("ab").compile(formula) is None
    _assert_rows_agree(formula, "ab", list(words_up_to("ab", 4)))


def test_open_program_evaluate_raises():
    sweep = LanguageSweep("ab")
    program = sweep.compile(Exists(Y, Concat(X, Y, Y)))
    assert program is not None
    with pytest.raises(ValueError):
        program.evaluate(sweep.family.table("ab"))


def test_relation_rows_counter_advances():
    before = kernel_stats.snapshot()
    grid = dict(
        satisfying_tuples(
            _formula_pool()["square"], "ab", list(words_up_to("ab", 3))
        )
    )
    delta = kernel_stats.diff(before, kernel_stats.snapshot())
    total = sum(len(rows) for rows in grid.values())
    assert total > 0
    assert delta.get("sweep_relation_rows", 0) == total


def test_fc_relation_evaluate_many_matches_oracle():
    formula = Exists(Z, Concat(Z, X, Y))
    relation = FCRelation(formula, (Y, X), "ab")
    words = list(words_up_to("ab", 4))
    batched = dict(relation.evaluate_many(words))
    for word in words:
        assert batched[word] == relation.evaluate(word), word


def test_defines_relation_routes_through_batch():
    # x = y defines the diagonal relation (word-independent), so the
    # "φ_R defines R" check passes on every sample; the complement
    # predicate fails immediately.
    formula = Concat(X, Y, Const(""))
    relation = FCRelation(formula, (X, Y), "ab")
    words = list(words_up_to("ab", 3))
    assert defines_relation(relation, lambda x, y: x == y, words)
    assert not defines_relation(relation, lambda x, y: x != y, words)


class TestStoreRoundTrip:
    """Cold scan → publish → hydrate must be bit-identical."""

    FORMULA = staticmethod(lambda: Exists(Z, Concat(Z, X, Y)))
    SCOPE = 4

    def _grid(self):
        formula = self.FORMULA()
        return list(
            satisfying_tuples(
                formula, "ab", words_up_to("ab", self.SCOPE), scope=self.SCOPE
            )
        )

    def test_hydrated_grid_is_bit_identical(self):
        store = ArtifactStore(MemoryBackend())
        previous = store_runtime.activate(store)
        try:
            cold = self._grid()  # publishes the sweep-relation artifact
            before = kernel_stats.snapshot()
            hydrated = self._grid()
            delta = kernel_stats.diff(before, kernel_stats.snapshot())
            assert delta.get("sweep_relations_hydrated", 0) == len(cold)
            # The hydrated path must not re-run the scan.
            assert delta.get("sweep_relation_rows", 0) == 0
        finally:
            store_runtime.deactivate(previous)
        assert hydrated == cold
        no_store = self._grid()
        assert no_store == cold

    def test_partial_scan_does_not_publish(self):
        store = ArtifactStore(MemoryBackend())
        previous = store_runtime.activate(store)
        try:
            batch = satisfying_tuples(
                self.FORMULA(),
                "ab",
                words_up_to("ab", self.SCOPE),
                scope=self.SCOPE,
            )
            next(batch)  # abandon after one word
            del batch
            before = kernel_stats.snapshot()
            full = self._grid()
            delta = kernel_stats.diff(before, kernel_stats.snapshot())
            # Nothing was published by the abandoned scan, so the full
            # scan cannot have hydrated.
            assert delta.get("sweep_relations_hydrated", 0) == 0
            assert full == self._grid() == list(
                satisfying_tuples(
                    self.FORMULA(), "ab", words_up_to("ab", self.SCOPE)
                )
            )
        finally:
            store_runtime.deactivate(previous)
