"""Soundness of the candidate-pool optimiser.

The optimised evaluator must agree with the naive reference evaluator on
*every* formula — the candidate pools may only skip values that cannot
change the quantifier's outcome.  We check this on randomized formulas
(hypothesis-generated ASTs over a small variable set) and on all the
paper's concrete formulas, plus direct unit tests of the pool rules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fc.optimizer import formula_pool, necessary_atoms
from repro.fc.semantics import evaluate, evaluate_naive
from repro.fc.structures import word_structure
from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
    free_variables,
)

VARS = [Var("v0"), Var("v1"), Var("v2")]
TERMS = VARS + [Const("a"), Const("b"), EPSILON]


def atoms():
    triples = st.tuples(
        st.sampled_from(TERMS), st.sampled_from(TERMS), st.sampled_from(TERMS)
    )
    plain = triples.map(lambda t: Concat(*t))
    chains = st.tuples(
        st.sampled_from(TERMS),
        st.lists(st.sampled_from(TERMS), min_size=1, max_size=4),
    ).map(lambda t: ConcatChain(t[0], tuple(t[1])))
    return st.one_of(plain, chains)


def formulas(depth: int = 3):
    def extend(children):
        unary = children.map(Not)
        binary = st.tuples(children, children).map(
            lambda t: And(*t)
        ) | st.tuples(children, children).map(
            lambda t: Or(*t)
        ) | st.tuples(children, children).map(lambda t: Implies(*t))
        quantified = st.tuples(st.sampled_from(VARS), children).map(
            lambda t: Exists(*t)
        ) | st.tuples(st.sampled_from(VARS), children).map(
            lambda t: Forall(*t)
        )
        return unary | binary | quantified

    return st.recursive(atoms(), extend, max_leaves=6)


words = st.text(alphabet="ab", max_size=5)


class TestOptimizerAgreesWithNaive:
    @settings(max_examples=300, deadline=None)
    @given(formulas(), words, st.data())
    def test_random_formulas(self, phi, w, data):
        structure = word_structure(w, "ab")
        pool = sorted(structure.universe_factors)
        assignment = {}
        for variable in free_variables(phi):
            assignment[variable] = data.draw(st.sampled_from(pool))
        fast = evaluate(structure, phi, dict(assignment))
        slow = evaluate_naive(structure, phi, dict(assignment))
        assert fast == slow, f"optimiser diverges on {phi!r} over {w!r}"

    @pytest.mark.parametrize("w", ["", "a", "ab", "aab", "abab", "cacabcabac"])
    def test_paper_formulas(self, w):
        from repro.fc.builders import phi_fib, phi_no_cube, phi_vbv, phi_ww

        alphabet = "abc" if "c" in w else "ab"
        for phi in (phi_ww(), phi_no_cube(), phi_vbv()):
            structure = word_structure(w, alphabet)
            assert evaluate(structure, phi, {}) == evaluate_naive(
                structure, phi, {}
            )
        if len(w) <= 4:
            structure = word_structure(w, "abc")
            phi = phi_fib()
            assert evaluate(structure, phi, {}) == evaluate_naive(
                structure, phi, {}
            )


class TestPoolRules:
    def test_determined_head(self):
        structure = word_structure("abab", "ab")
        x, y = Var("x"), Var("y")
        atom = Concat(x, Const("a"), Const("b"))
        pool = formula_pool(structure, {}, x, atom, True)
        assert pool == {"ab"}

    def test_prefix_constraint(self):
        structure = word_structure("aab", "ab")
        x, y = Var("x"), Var("y")
        atom = Concat(Var("k"), x, y)
        pool = formula_pool(structure, {Var("k"): "aab"}, x, atom, True)
        assert pool == {"", "a", "aa", "aab"}

    def test_or_union(self):
        structure = word_structure("ab", "ab")
        x = Var("x")
        phi = Or(Concat(x, Const("a"), EPSILON), Concat(x, Const("b"), EPSILON))
        pool = formula_pool(structure, {}, x, phi, True)
        assert pool == {"a", "b"}

    def test_and_intersection(self):
        structure = word_structure("ab", "ab")
        x = Var("x")
        phi = And(
            Concat(x, Const("a"), EPSILON), Concat(x, Const("b"), EPSILON)
        )
        pool = formula_pool(structure, {}, x, phi, True)
        assert pool == frozenset()

    def test_negative_atom_unconstrained(self):
        structure = word_structure("ab", "ab")
        x = Var("x")
        pool = formula_pool(
            structure, {}, x, Concat(x, Const("a"), EPSILON), False
        )
        assert pool is None

    def test_bound_variables_masked(self):
        # x ≐ c·y with y bound deeper: candidates treat y as unknown.
        structure = word_structure("aba", "ab")
        x, y = Var("x"), Var("y")
        phi = Exists(y, Concat(x, Const("b"), y))
        pool = formula_pool(structure, {y: "a"}, x, phi, True)
        # factors starting with b: b, ba
        assert pool == {"b", "ba"}

    def test_chain_decomposition_pool(self):
        structure = word_structure("abba", "ab")
        x, y1, y2 = Var("x"), Var("y1"), Var("y2")
        atom = ConcatChain(x, (y1, Const("b"), Const("b"), y2))
        pool = formula_pool(structure, {x: "abba"}, y1, atom, True)
        assert pool == {"a"}

    def test_chain_repeated_variable(self):
        structure = word_structure("abab", "ab")
        x, y = Var("x"), Var("y")
        atom = ConcatChain(x, (y, y))
        pool = formula_pool(structure, {x: "abab"}, y, atom, True)
        assert pool == {"ab"}

    def test_necessary_atoms_and(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        a1, a2 = Concat(x, y, z), Concat(y, x, z)
        assert necessary_atoms(And(a1, a2), True) == {a1, a2}
        assert necessary_atoms(And(a1, a2), False) == frozenset()

    def test_necessary_atoms_not_or(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        a1, a2 = Concat(x, y, z), Concat(y, x, z)
        assert necessary_atoms(Or(a1, a2), False) == frozenset()
        assert necessary_atoms(Not(Or(a1, a2)), True) == frozenset()

    def test_necessary_atoms_exclude_bound(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        phi = Exists(y, And(Concat(x, y, z), Concat(x, z, z)))
        assert necessary_atoms(phi, True) == {Concat(x, z, z)}
