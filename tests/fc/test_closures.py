"""Tests for FC closure operations and the regular-intersection argument."""

import pytest

from repro.fc.builders import phi_no_cube, phi_ww
from repro.fc.closures import (
    RegularIntersectionArgument,
    intersect_with_regex,
    sentence_and,
    sentence_not,
    sentence_or,
)
from repro.fc.semantics import defines_language_member, language_slice
from repro.fc.syntax import Concat, Var
from repro.words.generators import PAPER_LANGUAGES, words_up_to


class TestBooleanClosures:
    def test_and(self):
        phi = sentence_and(phi_ww(), phi_no_cube())
        # squares that are cube-free: abab qualifies? abab has no cube ✓.
        assert defines_language_member("abab", phi, "ab")
        assert not defines_language_member("aaaa", phi, "ab")  # cube aaa

    def test_or(self):
        phi = sentence_or(phi_ww(), phi_no_cube())
        assert defines_language_member("aaaa", phi, "ab")  # square
        assert defines_language_member("aba", phi, "ab")  # cube-free

    def test_not(self):
        phi = sentence_not(phi_ww())
        slice_plain = language_slice(phi_ww(), "ab", 4)
        slice_not = language_slice(phi, "ab", 4)
        universe = frozenset(words_up_to("ab", 4))
        assert slice_plain | slice_not == universe
        assert not (slice_plain & slice_not)

    def test_open_formula_rejected(self):
        x = Var("x")
        with pytest.raises(ValueError):
            sentence_not(Concat(x, x, x))


class TestRegularIntersection:
    def test_intersect_with_regex(self):
        phi = intersect_with_regex(phi_ww(), "a*b*")
        # squares inside a*b*: aa, bb, aaaa, ... but not abab.
        assert defines_language_member("aa", phi, "ab")
        assert defines_language_member("aabb"[2:] * 2, phi, "ab")  # bbbb
        assert not defines_language_member("abab", phi, "ab")

    def test_conclusion_argument(self):
        class Balanced:
            def __contains__(self, w):
                return w.count("a") == w.count("b")

        argument = RegularIntersectionArgument(
            "{|w|_a = |w|_b}",
            Balanced(),
            "a*b*",
            "anbn",
            PAPER_LANGUAGES["anbn"],
        )
        ok, witness = argument.check(7)
        assert ok, witness
        assert "closed under regular intersection" in argument.conclusion

    def test_argument_detects_wrong_target(self):
        class Balanced:
            def __contains__(self, w):
                return w.count("a") == w.count("b")

        argument = RegularIntersectionArgument(
            "balanced", Balanced(), "a*b*", "L1", PAPER_LANGUAGES["L1"]
        )
        ok, witness = argument.check(6)
        assert not ok
        assert witness is not None
