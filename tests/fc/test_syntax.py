"""Tests for the FC AST: quantifier rank, free variables, substitution."""

import pytest

from repro.fc.syntax import (
    And,
    Concat,
    ConcatChain,
    Const,
    EPSILON,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
    all_variables,
    conjunction,
    constants_used,
    disjunction,
    exists_many,
    forall_many,
    free_variables,
    quantifier_rank,
    subformulas,
    substitute,
    term,
)

x, y, z = Var("x"), Var("y"), Var("z")
A = Const("a")


class TestQuantifierRank:
    """The qr definition from Section 3."""

    def test_atom_rank_zero(self):
        assert quantifier_rank(Concat(x, y, z)) == 0

    def test_chain_rank_zero(self):
        assert quantifier_rank(ConcatChain(x, (y, A, z))) == 0

    def test_negation_preserves(self):
        assert quantifier_rank(Not(Exists(x, Concat(x, y, z)))) == 1

    def test_connectives_take_max(self):
        left = Exists(x, Concat(x, x, x))
        right = Exists(x, Exists(y, Concat(x, y, y)))
        assert quantifier_rank(And(left, right)) == 2
        assert quantifier_rank(Or(left, right)) == 2
        assert quantifier_rank(Implies(left, right)) == 2

    def test_quantifiers_add_one(self):
        phi = Forall(x, Exists(y, Concat(x, y, y)))
        assert quantifier_rank(phi) == 2

    def test_nested_same_variable_still_counts(self):
        phi = Exists(x, Exists(x, Concat(x, x, x)))
        assert quantifier_rank(phi) == 2


class TestFreeVariables:
    def test_atom(self):
        assert free_variables(Concat(x, A, y)) == {x, y}

    def test_quantifier_binds(self):
        assert free_variables(Exists(x, Concat(x, y, z))) == {y, z}

    def test_shadowing(self):
        phi = And(Concat(x, x, x), Exists(x, Concat(x, y, y)))
        assert free_variables(phi) == {x, y}

    def test_sentence_has_none(self):
        phi = exists_many([x, y], Concat(x, y, y))
        assert free_variables(phi) == frozenset()

    def test_all_variables_includes_bound(self):
        phi = Exists(x, Concat(x, y, EPSILON))
        assert all_variables(phi) == {x, y}

    def test_constants_used(self):
        phi = Exists(x, Concat(x, A, EPSILON))
        assert constants_used(phi) == {A, EPSILON}


class TestSubstitution:
    def test_atom_substitution(self):
        phi = Concat(x, y, z)
        assert substitute(phi, {y: A}) == Concat(x, A, z)

    def test_bound_variable_untouched(self):
        phi = Exists(x, Concat(x, y, y))
        result = substitute(phi, {x: A})
        assert result == phi

    def test_free_under_quantifier(self):
        phi = Exists(x, Concat(x, y, y))
        result = substitute(phi, {y: z})
        assert result == Exists(x, Concat(x, z, z))

    def test_capture_detected(self):
        phi = Exists(x, Concat(x, y, y))
        with pytest.raises(ValueError):
            substitute(phi, {y: x})

    def test_chain_substitution(self):
        phi = ConcatChain(x, (y, A, y))
        assert substitute(phi, {y: z}) == ConcatChain(x, (z, A, z))


class TestHelpers:
    def test_term_coercion(self):
        assert term("a") == Const("a")
        assert term("") == EPSILON
        assert term(x) is x
        with pytest.raises(ValueError):
            term("ab")
        with pytest.raises(TypeError):
            term(3)

    def test_conjunction_disjunction(self):
        atoms = [Concat(x, x, x), Concat(y, y, y), Concat(z, z, z)]
        conj = conjunction(atoms)
        assert isinstance(conj, And)
        disj = disjunction(atoms)
        assert isinstance(disj, Or)
        with pytest.raises(ValueError):
            conjunction([])
        with pytest.raises(ValueError):
            disjunction([])

    def test_quantifier_folds(self):
        phi = exists_many([x, y], Concat(x, y, y))
        assert quantifier_rank(phi) == 2
        psi = forall_many([x, y], Concat(x, y, y))
        assert quantifier_rank(psi) == 2
        assert isinstance(psi, Forall)

    def test_operator_sugar(self):
        atom = Concat(x, x, x)
        assert isinstance(atom & atom, And)
        assert isinstance(atom | atom, Or)
        assert isinstance(~atom, Not)

    def test_subformulas(self):
        phi = Exists(x, And(Concat(x, x, x), Not(Concat(x, y, y))))
        nodes = list(subformulas(phi))
        assert len(nodes) == 5

    def test_chain_requires_parts(self):
        with pytest.raises(ValueError):
            ConcatChain(x, ())

    def test_const_validation(self):
        with pytest.raises(ValueError):
            Const("ab")
