"""Tests for the FC(k) sentence pool (Ehrenfeucht-theorem workloads)."""

import pytest

from repro.fc.enumeration import atom_pool, pool_size, sentence_pool
from repro.fc.syntax import Var, free_variables, quantifier_rank


class TestAtomPool:
    def test_no_constant_only_atoms(self):
        variables = [Var("p0")]
        for atom in atom_pool(variables, "ab"):
            assert free_variables(atom)

    def test_dedup(self):
        variables = [Var("p0")]
        atoms = atom_pool(variables, "a")
        assert len(atoms) == len(set(atoms))


class TestSentencePool:
    def test_rank_zero_empty(self):
        assert pool_size(0, "ab") == 0

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            list(sentence_pool(-1, "ab"))

    def test_all_sentences_closed_and_ranked(self):
        for sentence in sentence_pool(1, "a", max_atoms=1):
            assert not free_variables(sentence)
            assert quantifier_rank(sentence) == 1

    def test_rank_two_uses_both_variables(self):
        count = 0
        for sentence in sentence_pool(2, "a", max_atoms=1):
            assert quantifier_rank(sentence) == 2
            count += 1
        assert count > 0

    def test_pool_is_reasonably_sized(self):
        assert 10 < pool_size(1, "a") < 20000
