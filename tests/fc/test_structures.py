"""Tests for τ_Σ word structures."""

import pytest
from hypothesis import given, strategies as st

from repro.fc.structures import BOTTOM, Bottom, WordStructure, word_structure
from repro.words.factors import factors

words = st.text(alphabet="ab", max_size=10)


class TestUniverse:
    @given(words)
    def test_universe_is_factors_plus_bottom(self, w):
        structure = WordStructure(w, "ab")
        assert structure.universe_factors == factors(w)
        universe = structure.universe()
        assert universe[-1] is BOTTOM
        assert set(universe[:-1]) == set(factors(w))

    @given(words)
    def test_universe_size(self, w):
        structure = WordStructure(w, "ab")
        assert structure.universe_size() == len(factors(w)) + 1

    def test_contains(self):
        structure = WordStructure("aba", "ab")
        assert structure.contains("ab")
        assert structure.contains(BOTTOM)
        assert not structure.contains("bb")

    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            WordStructure("abc", "ab")
        with pytest.raises(ValueError):
            WordStructure("a", "aa")


class TestConstants:
    def test_present_letter(self):
        structure = WordStructure("aba", "ab")
        assert structure.constant("a") == "a"
        assert structure.constant("b") == "b"
        assert structure.constant("") == ""

    def test_absent_letter_is_bottom(self):
        structure = WordStructure("aaa", "ab")
        assert structure.constant("b") is BOTTOM

    def test_unknown_symbol(self):
        structure = WordStructure("a", "ab")
        with pytest.raises(ValueError):
            structure.constant("c")

    def test_constants_vector_order(self):
        structure = WordStructure("ab", "ab")
        assert structure.constants_vector() == ("a", "b", "")

    def test_constants_vector_with_bottom(self):
        structure = WordStructure("aa", "ab")
        vector = structure.constants_vector()
        assert vector[0] == "a"
        assert vector[1] is BOTTOM
        assert vector[2] == ""


class TestConcatRelation:
    def test_basic(self):
        structure = WordStructure("aba", "ab")
        assert structure.concat_holds("ab", "a", "b")
        assert structure.concat_holds("aba", "ab", "a")
        assert not structure.concat_holds("ab", "b", "a")

    def test_result_must_be_factor(self):
        structure = WordStructure("aba", "ab")
        # "ba" and "b" are factors but "bab" is not.
        assert not structure.concat_holds("bab", "ba", "b")

    def test_bottom_never_participates(self):
        structure = WordStructure("aba", "ab")
        assert not structure.concat_holds(BOTTOM, "", "")
        assert not structure.concat_holds("a", BOTTOM, "a")

    @given(words, st.data())
    def test_concat_matches_string_concatenation(self, w, data):
        structure = WordStructure(w, "ab")
        pool = sorted(structure.universe_factors)
        if not pool:
            return
        a = data.draw(st.sampled_from(pool))
        b = data.draw(st.sampled_from(pool))
        expected = (a + b) in w
        assert structure.concat_holds(a + b, a, b) == expected


class TestRestriction:
    def test_restriction_universe(self):
        base = WordStructure("aab", "ab")
        restricted = base.restrict({"", "a", "aa"})
        assert restricted.universe_factors == {"", "a", "aa"}
        assert restricted.universe_size() == 4

    def test_restriction_concat(self):
        base = WordStructure("aab", "ab")
        restricted = base.restrict({"", "a", "aa"})
        assert restricted.concat_holds("aa", "a", "a")
        # "ab" is outside the sub-universe even though it is a factor.
        assert not restricted.concat_holds("ab", "a", "b")

    def test_restriction_constants(self):
        base = WordStructure("aab", "ab")
        restricted = base.restrict({"", "a", "aa"})
        assert restricted.constant("a") == "a"
        assert restricted.constant("b") is BOTTOM  # b excluded

    def test_restriction_matches_small_word_structure(self):
        # 𝔄_{w1·w2}|Facs(w1) behaves like 𝔄_{w1} (the Lemma 4.4 setup).
        combined = WordStructure("aabba", "ab")
        restricted = combined.restrict(factors("aab"))
        small = WordStructure("aab", "ab")
        assert restricted.universe_factors == small.universe_factors
        assert restricted.constants_vector() == small.constants_vector()
        for a in restricted.universe_factors:
            for b in restricted.universe_factors:
                assert restricted.concat_holds(a + b, a, b) == (
                    small.concat_holds(a + b, a, b)
                )

    def test_non_factor_rejected(self):
        base = WordStructure("aab", "ab")
        with pytest.raises(ValueError):
            base.restrict({"bb"})


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM

    def test_cached_structure(self):
        assert word_structure("aba", "ab") is word_structure("aba", "ab")
