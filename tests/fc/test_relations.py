"""Tests for FC-definable relations (Section 2's 'defines' condition)."""

import pytest

from repro.fc.builders import phi_copy, phi_k_copies
from repro.fc.relations import FCRelation, defines_relation, relation_slice
from repro.fc.syntax import Concat, Var

x, y = Var("x"), Var("y")
SAMPLE_WORDS = ["", "a", "aa", "ab", "aabb", "aaaa", "ababab"]


class TestFCRelation:
    def test_copy_is_definable(self):
        relation = FCRelation(phi_copy(x, y), (x, y), "ab")
        assert defines_relation(
            relation, lambda u, v: u == v + v, SAMPLE_WORDS
        )

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_k_copies_definable(self, k):
        relation = FCRelation(phi_k_copies(x, y, k), (x, y), "ab")
        assert defines_relation(
            relation, lambda u, v: u == v * k, ["", "a", "aaa", "aaaa"]
        )

    def test_wrong_predicate_detected(self):
        relation = FCRelation(phi_copy(x, y), (x, y), "ab")
        assert not defines_relation(
            relation, lambda u, v: u == v, SAMPLE_WORDS
        )

    def test_evaluate(self):
        relation = FCRelation(phi_copy(x, y), (x, y), "ab")
        result = relation.evaluate("aaaa")
        assert ("aa", "a") in result
        assert ("aaaa", "aa") in result
        assert ("a", "a") not in result

    def test_variable_validation(self):
        with pytest.raises(ValueError):
            FCRelation(phi_copy(x, y), (x,), "ab")
        with pytest.raises(ValueError):
            FCRelation(Concat(x, y, y), (x, y, y), "ab")


class TestRelationSlice:
    def test_slice_respects_facs(self):
        slice_ = relation_slice(lambda u, v: u == v, "ab", 2, "ab")
        assert ("a", "a") in slice_
        assert ("ba", "ba") not in slice_  # ba is not a factor of ab

    def test_arity(self):
        slice_ = relation_slice(lambda u: len(u) == 1, "ab", 1, "ab")
        assert slice_ == {("a",), ("b",)}
