"""Tests for linear / semi-linear sets."""

import pytest
from hypothesis import given, strategies as st

from repro.semilinear.linear_sets import LinearSet, SemiLinearSet


class TestLinearSet:
    def test_singleton(self):
        s = LinearSet(5)
        assert 5 in s
        assert 4 not in s
        assert 6 not in s

    def test_arithmetic_progression(self):
        s = LinearSet(1, (3,))
        assert all(n in s for n in (1, 4, 7, 100))
        assert all(n not in s for n in (0, 2, 3, 5))

    def test_two_periods(self):
        # {0 + 3i + 5j} — the Chicken McNugget set: misses 1,2,4,7.
        s = LinearSet(0, (3, 5))
        members = s.elements_up_to(12)
        assert members == {0, 3, 5, 6, 8, 9, 10, 11, 12}

    def test_frobenius_tail(self):
        s = LinearSet(0, (3, 5))
        # beyond the Frobenius number 7, everything is in.
        assert all(n in s for n in range(8, 60))

    @given(
        st.integers(0, 10),
        st.lists(st.integers(1, 6), max_size=3).map(tuple),
        st.integers(0, 60),
    )
    def test_membership_matches_brute_force(self, offset, periods, n):
        s = LinearSet(offset, periods)
        reachable = {offset}
        while True:
            extended = reachable | {
                r + m for r in reachable for m in periods if r + m <= 60
            }
            if extended == reachable:
                break
            reachable = extended
        assert (n in s) == (n in reachable)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSet(-1)
        with pytest.raises(ValueError):
            LinearSet(0, (0,))


class TestSemiLinearSet:
    def test_union_membership(self):
        s = SemiLinearSet.from_parts(LinearSet(0, (2,)), 7)
        assert 4 in s
        assert 7 in s
        assert 5 not in s

    def test_from_ints(self):
        s = SemiLinearSet.from_parts(1, 2, 4)
        assert s.elements_up_to(8) == {1, 2, 4}

    def test_union_operation(self):
        evens = SemiLinearSet.arithmetic_progression(0, 2)
        odds = SemiLinearSet.arithmetic_progression(1, 2)
        both = evens.union(odds)
        assert both.elements_up_to(5) == {0, 1, 2, 3, 4, 5}

    def test_eventually_periodic_form(self):
        s = SemiLinearSet.arithmetic_progression(3, 4)
        exceptions, threshold, period = s.eventually_periodic_form()
        assert period % 4 == 0
        for n in range(threshold, threshold + 3 * period):
            assert (n in s) == ((n + period) in s)

    def test_empty(self):
        s = SemiLinearSet()
        assert 0 not in s
        assert s.eventually_periodic_form() == (frozenset(), 0, 1)
