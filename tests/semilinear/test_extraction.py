"""Tests for unary FC → semi-linear extraction."""

import pytest

from repro.core.relations import OracleAtom
from repro.fc.builders import phi_epsilon, phi_k_copies, phi_whole_word, phi_ww
from repro.fc.syntax import And, Exists, Not, Var
from repro.semilinear.extraction import extract_semilinear


class TestExtraction:
    def test_squares_are_even_lengths(self):
        # Over {a}, φ_ww defines the even lengths: {2n}.
        result = extract_semilinear(phi_ww(), probe_bound=24, letter="a")
        assert result.found
        assert result.period == 2 or result.period % 2 == 0
        for n in range(40):
            assert (n in result.semilinear) == (n % 2 == 0)

    def test_triples(self):
        # ∃x, y: φ_w(x) ∧ x = y³ — lengths divisible by 3.
        x, y = Var("x"), Var("y")
        phi = Exists(
            x, Exists(y, And(phi_whole_word(x), phi_k_copies(x, y, 3)))
        )
        result = extract_semilinear(phi, probe_bound=24, letter="a")
        assert result.found
        for n in range(40):
            assert (n in result.semilinear) == (n % 3 == 0)

    def test_finite_language(self):
        # "the word is empty": {0}.
        x = Var("x")
        phi = Exists(x, And(phi_whole_word(x), phi_epsilon(x)))
        result = extract_semilinear(phi, probe_bound=12, letter="a")
        assert result.found
        for n in range(20):
            assert (n in result.semilinear) == (n == 0)

    def test_cofinite_language(self):
        # "the word is NOT empty".
        x = Var("x")
        phi = Not(Exists(x, And(phi_whole_word(x), phi_epsilon(x))))
        result = extract_semilinear(phi, probe_bound=12, letter="a")
        assert result.found
        assert 0 not in result.semilinear
        assert all(n in result.semilinear for n in range(1, 20))

    def test_powers_of_two_oracle_not_extracted(self):
        """An oracle-backed pseudo-sentence for {a^{2ⁿ}} — exactly the
        Lemma 3.6 language — yields no window-stable structure."""
        x = Var("x")

        def is_power_of_two_factor(value: str) -> bool:
            n = len(value)
            return n >= 1 and (n & (n - 1)) == 0

        atom = OracleAtom((x,), is_power_of_two_factor, "Pow2")
        phi = Exists(x, And(phi_whole_word(x), atom))
        result = extract_semilinear(phi, probe_bound=40, letter="a")
        assert not result.found
