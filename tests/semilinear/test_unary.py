"""Tests for unary-language semi-linearity detection (Lemma 3.6's engine)."""

import pytest

from repro.semilinear.linear_sets import LinearSet, SemiLinearSet
from repro.semilinear.unary import (
    detect_eventual_periodicity,
    detect_robust_periodicity,
    is_sample_semilinear,
    lengths_of,
    powers_of_two,
    scaled_powers_of_two,
    semilinear_gap_witness,
    unary_language_of,
)


class TestTranslation:
    def test_lengths(self):
        assert lengths_of(["", "a", "aaa"]) == {0, 1, 3}

    def test_unary_language(self):
        assert unary_language_of({2, 0}) == ["", "aa"]


class TestPeriodicityDetection:
    def test_arithmetic_progression_detected(self):
        sample = frozenset(range(3, 60, 4))
        result = detect_eventual_periodicity(sample, 60)
        assert result is not None
        threshold, period = result
        assert period % 4 == 0 or period == 4

    def test_finite_set_detected(self):
        # A finite set is eventually periodic (eventually all-out).
        assert is_sample_semilinear(frozenset({1, 5, 9}), 60)

    def test_full_set_detected(self):
        assert is_sample_semilinear(frozenset(range(61)), 60)

    def test_powers_of_two_not_detected(self):
        """The heart of Lemma 3.6: {2ⁿ} has no periodic tail."""
        assert not is_sample_semilinear(powers_of_two(256), 256)

    def test_scaled_powers_not_detected(self):
        """Prop 4.9's variant {i·2ⁿ}."""
        assert not is_sample_semilinear(scaled_powers_of_two(3, 384), 384)


class TestRobustDetection:
    def test_semilinear_set_survives_doubling(self):
        result = detect_robust_periodicity(lambda n: n % 3 == 1, 60)
        assert result is not None
        threshold, period = result
        assert period % 3 == 0

    def test_powers_fail_at_any_window(self):
        def is_power(n):
            return n >= 1 and (n & (n - 1)) == 0

        for bound in (100, 200, 384):
            assert detect_robust_periodicity(is_power, bound) is None

    def test_finite_set_survives(self):
        # A finite set IS semi-linear; its empty tail doubles fine.
        result = detect_robust_periodicity(lambda n: n in {1, 4, 6}, 40)
        assert result is not None


class TestPowersOfTwo:
    def test_members(self):
        assert powers_of_two(20) == {1, 2, 4, 8, 16}

    def test_scaled(self):
        assert scaled_powers_of_two(3, 30) == {6, 12, 24}

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scaled_powers_of_two(0, 10)

    def test_gaps_grow(self):
        ordered = sorted(powers_of_two(512))
        gaps = [b - a for a, b in zip(ordered, ordered[1:])]
        assert gaps == sorted(gaps)
        assert len(set(gaps)) == len(gaps)


class TestGapWitness:
    def test_no_semilinear_set_matches_powers(self):
        """Concrete candidates all disagree with {2ⁿ} somewhere."""
        target = powers_of_two(128)
        candidates = [
            SemiLinearSet.from_parts(LinearSet(1, (1,))),     # all n ≥ 1
            SemiLinearSet.arithmetic_progression(0, 2),       # evens
            SemiLinearSet.from_parts(1, 2, 4, 8, 16),          # finite
            SemiLinearSet.from_parts(
                LinearSet(1, (2,)), LinearSet(2, (4,))
            ),
        ]
        for candidate in candidates:
            witness = semilinear_gap_witness(
                candidate, lambda n: n in target, 128
            )
            assert witness is not None

    def test_agreeing_set_has_no_witness(self):
        evens = SemiLinearSet.arithmetic_progression(0, 2)
        witness = semilinear_gap_witness(
            evens, lambda n: n % 2 == 0, 100
        )
        assert witness is None
