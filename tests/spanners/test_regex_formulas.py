"""Tests for regex formulas (the spanner extractor layer)."""

import pytest
from hypothesis import given, strategies as st

from repro.spanners.regex_formulas import (
    RBind,
    RStar,
    RTerminal,
    RUnion,
    parse_regex_formula,
)
from repro.spanners.spans import Span


def spans_of(pattern, document, var="x"):
    formula = parse_regex_formula(pattern)
    return {
        dict(match)[var] for match in formula.match_spans(document)
    }


class TestParsing:
    def test_binding_syntax(self):
        formula = parse_regex_formula("x{ab}")
        assert isinstance(formula, RBind)
        assert formula.variables() == {"x"}

    def test_plain_letter(self):
        assert isinstance(parse_regex_formula("a"), RTerminal)

    def test_star(self):
        assert isinstance(parse_regex_formula("a*"), RStar)

    @pytest.mark.parametrize("bad", ["x{a", "(a", "a)", "*a"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_regex_formula(bad)


class TestFunctionality:
    def test_union_must_bind_same_vars(self):
        with pytest.raises(ValueError):
            parse_regex_formula("x{a}|b")

    def test_star_cannot_bind(self):
        with pytest.raises(ValueError):
            parse_regex_formula("(x{a})*")

    def test_double_binding_rejected(self):
        with pytest.raises(ValueError):
            parse_regex_formula("x{a}x{b}")

    def test_optional_binding_rejected(self):
        with pytest.raises(ValueError):
            parse_regex_formula("x{a}?")


class TestMatching:
    def test_intro_misspelling_example(self):
        """The paper's introduction: γ(x) = Σ* x{...} Σ*."""
        spans = spans_of(".*x{ab|ba}.*", "abba")
        assert spans == {Span(0, 2), Span(2, 4)}

    def test_whole_document_binding(self):
        spans = spans_of("x{.*}", "ab")
        assert spans == {Span(0, 2)}

    def test_two_variables(self):
        formula = parse_regex_formula("x{a*}y{b*}")
        matches = formula.match_spans("aab")
        assert len(matches) == 1
        row = dict(next(iter(matches)))
        assert row["x"] == Span(0, 2)
        assert row["y"] == Span(2, 3)

    def test_no_match(self):
        assert parse_regex_formula("x{aa}").match_spans("ab") == frozenset()

    def test_empty_document(self):
        spans = spans_of("x{a*}", "")
        assert spans == {Span(0, 0)}

    def test_star_dp(self):
        formula = parse_regex_formula("(ab)*")
        assert formula.match_spans("abab")
        assert not formula.match_spans("aba")

    @given(st.text(alphabet="ab", max_size=6))
    def test_sigma_star_var_sigma_star_finds_all_occurrences(self, d):
        spans = spans_of(".*x{ab}.*", d)
        expected = {
            Span(i, i + 2)
            for i in range(len(d) - 1)
            if d[i : i + 2] == "ab"
        }
        assert spans == expected

    def test_plus_with_binding(self):
        spans = spans_of(".*x{a+}.*", "aab")
        assert spans == {Span(0, 1), Span(0, 2), Span(1, 2)}
