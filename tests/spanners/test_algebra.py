"""Tests for the span relational algebra (∪, π, ⋈, \\, ζ=, ζ^R)."""

import pytest

from repro.spanners.algebra import SpanRelation
from repro.spanners.spans import Span

DOC = "aabaa"


def rel(rows, schema=None):
    return SpanRelation.build(DOC, rows, schema=schema)


class TestConstruction:
    def test_build_and_contains(self):
        r = rel([{"x": Span(0, 1)}])
        assert {"x": Span(0, 1)} in r
        assert {"x": Span(0, 2)} not in r
        assert len(r) == 1

    def test_schema_inference_and_validation(self):
        with pytest.raises(ValueError):
            rel([{"x": Span(0, 1)}, {"y": Span(0, 1)}])
        with pytest.raises(ValueError):
            SpanRelation.build(DOC, [])

    def test_empty_with_schema(self):
        r = SpanRelation.empty(DOC, {"x"})
        assert len(r) == 0
        assert r.schema == {"x"}

    def test_contents_view(self):
        r = rel([{"x": Span(0, 2)}, {"x": Span(3, 5)}])
        assert r.contents() == {(("x", "aa"),)}  # both spans mark "aa"


class TestSetOperations:
    def test_union(self):
        r1 = rel([{"x": Span(0, 1)}])
        r2 = rel([{"x": Span(1, 2)}])
        assert len(r1.union(r2)) == 2

    def test_union_schema_mismatch(self):
        r1 = rel([{"x": Span(0, 1)}])
        r2 = rel([{"y": Span(0, 1)}])
        with pytest.raises(ValueError):
            r1.union(r2)

    def test_difference(self):
        r1 = rel([{"x": Span(0, 1)}, {"x": Span(1, 2)}])
        r2 = rel([{"x": Span(1, 2)}])
        result = r1.difference(r2)
        assert list(result) == [{"x": Span(0, 1)}]

    def test_cross_document_rejected(self):
        r1 = rel([{"x": Span(0, 1)}])
        r2 = SpanRelation.build("bb", [{"x": Span(0, 1)}])
        with pytest.raises(ValueError):
            r1.union(r2)


class TestProjectJoin:
    def test_project(self):
        r = rel([{"x": Span(0, 1), "y": Span(1, 2)}])
        projected = r.project(["x"])
        assert projected.schema == {"x"}
        assert {"x": Span(0, 1)} in projected

    def test_project_unknown_variable(self):
        r = rel([{"x": Span(0, 1)}])
        with pytest.raises(ValueError):
            r.project(["z"])

    def test_project_to_boolean(self):
        r = rel([{"x": Span(0, 1)}])
        boolean = r.project([])
        assert len(boolean) == 1  # the empty tuple: "non-empty" marker

    def test_natural_join_shared_variable(self):
        r1 = rel([{"x": Span(0, 1), "y": Span(1, 2)}])
        r2 = rel([{"y": Span(1, 2), "z": Span(2, 3)}, {"y": Span(0, 1), "z": Span(2, 3)}])
        joined = r1.natural_join(r2)
        assert len(joined) == 1
        row = next(iter(joined))
        assert row == {"x": Span(0, 1), "y": Span(1, 2), "z": Span(2, 3)}

    def test_join_disjoint_schemas_is_product(self):
        r1 = rel([{"x": Span(0, 1)}, {"x": Span(1, 2)}])
        r2 = rel([{"y": Span(2, 3)}])
        assert len(r1.natural_join(r2)) == 2


class TestSelections:
    def test_equality_selection(self):
        # x marks "aa" at 0..2, y marks "aa" at 3..5: same content,
        # different spans — ζ= keeps the row.
        r = rel(
            [
                {"x": Span(0, 2), "y": Span(3, 5)},
                {"x": Span(0, 2), "y": Span(2, 3)},
            ]
        )
        selected = r.select_equal("x", "y")
        assert len(selected) == 1
        kept = next(iter(selected))
        assert kept["y"] == Span(3, 5)

    def test_equality_selection_unknown_variable(self):
        r = rel([{"x": Span(0, 1)}])
        with pytest.raises(ValueError):
            r.select_equal("x", "nope")

    def test_relation_selection(self):
        r = rel(
            [
                {"x": Span(0, 2), "y": Span(2, 3)},  # aa, b
                {"x": Span(0, 1), "y": Span(2, 3)},  # a, b
            ]
        )
        same_length = r.select_relation(
            ("x", "y"), lambda u, v: len(u) == len(v)
        )
        assert len(same_length) == 1

    def test_relation_selection_order_matters(self):
        r = rel([{"x": Span(0, 2), "y": Span(2, 3)}])  # aa, b
        prefix = r.select_relation(("y", "x"), lambda u, v: v.startswith(u))
        assert len(prefix) == 0
        prefix2 = r.select_relation(("x", "y"), lambda u, v: u.startswith("a"))
        assert len(prefix2) == 1
