"""Tests for the regular-spanner normal form and core simplification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spanners.normal_form import (
    CoreSimplification,
    compile_spanner,
    core_simplify,
    vset_join,
    vset_project,
    vset_union,
)
from repro.spanners.spanner import (
    Difference,
    EqualitySelect,
    Join,
    Project,
    SpannerUnion,
    extract,
)
from repro.spanners.vset_automata import compile_regex_formula
from repro.spanners.regex_formulas import parse_regex_formula

documents = st.text(alphabet="ab", max_size=6)


def rows(relation):
    return {frozenset(r.items()) for r in relation}


class TestClosureOperations:
    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_union(self, document):
        left = extract(".*x{aa}.*")
        right = extract(".*x{bb}.*")
        automaton = vset_union(
            compile_spanner(left), compile_spanner(right)
        )
        expected = rows(SpannerUnion(left, right).evaluate(document))
        assert rows(automaton.evaluate(document)) == expected

    def test_union_schema_mismatch(self):
        with pytest.raises(ValueError):
            vset_union(
                compile_spanner(extract(".*x{a}.*")),
                compile_spanner(extract(".*y{a}.*")),
            )

    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_project(self, document):
        base = extract("x{a*}y{b*}")
        automaton = vset_project(compile_spanner(base), frozenset(["x"]))
        expected = rows(Project(base, ("x",)).evaluate(document))
        assert rows(automaton.evaluate(document)) == expected

    def test_project_unknown_variable(self):
        with pytest.raises(ValueError):
            vset_project(
                compile_spanner(extract(".*x{a}.*")), frozenset(["z"])
            )

    @settings(max_examples=30, deadline=None)
    @given(documents)
    def test_join_disjoint(self, document):
        left = extract(".*x{a+}.*")
        right = extract(".*y{b+}.*")
        automaton = vset_join(compile_spanner(left), compile_spanner(right))
        expected = rows(Join(left, right).evaluate(document))
        assert rows(automaton.evaluate(document)) == expected

    def test_join_shared_rejected(self):
        with pytest.raises(ValueError):
            vset_join(
                compile_spanner(extract(".*x{a}.*")),
                compile_spanner(extract(".*x{b}.*")),
            )


class TestCompileSpanner:
    TREES = [
        SpannerUnion(extract(".*x{aa}.*"), extract(".*x{ab}.*")),
        Project(extract("x{a*}y{b*}"), ("y",)),
        Join(extract(".*x{a+}.*"), extract(".*y{ba}.*")),
        Project(
            Join(extract(".*x{a+}.*"), extract(".*y{b+}.*")), ("x",)
        ),
    ]

    @pytest.mark.parametrize("tree", TREES)
    def test_single_automaton_equals_tree(self, tree):
        automaton = compile_spanner(tree)
        for document in ("", "a", "ab", "abba", "aabab"):
            assert rows(automaton.evaluate(document)) == rows(
                tree.evaluate(document)
            ), document

    def test_non_regular_rejected(self):
        core = EqualitySelect(
            Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
        )
        with pytest.raises(ValueError):
            compile_spanner(core)


class TestCoreSimplification:
    def test_selection_hoisted(self):
        core = EqualitySelect(
            Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
        )
        simplified = core_simplify(core)
        assert isinstance(simplified, CoreSimplification)
        assert simplified.selections == (("x", "y"),)
        for document in ("", "aa", "aba", "aabaa"):
            assert rows(simplified.evaluate(document)) == rows(
                core.evaluate(document)
            ), document

    def test_selection_under_join_hoisted(self):
        inner = EqualitySelect(
            Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
        )
        tree = Join(inner, extract(".*z{b+}.*"))
        simplified = core_simplify(tree)
        assert simplified.selections == (("x", "y"),)
        for document in ("ab", "aabaa", "abab"):
            assert rows(simplified.evaluate(document)) == rows(
                tree.evaluate(document)
            )

    def test_projection_dropping_selected_variable_rejected(self):
        inner = EqualitySelect(
            Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
        )
        with pytest.raises(ValueError):
            core_simplify(Project(inner, ("x",)))

    def test_projection_keeping_selected_variables_ok(self):
        inner = EqualitySelect(
            Join(
                Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")),
                extract(".*z{b+}.*"),
            ),
            "x",
            "y",
        )
        tree = Project(inner, ("x", "y"))
        simplified = core_simplify(tree)
        for document in ("ab", "aabaa" + "b",):
            assert rows(simplified.evaluate(document)) == rows(
                tree.evaluate(document)
            )
