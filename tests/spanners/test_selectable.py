"""Tests for the selectability harness (spanners ↔ FC[REG])."""

import pytest

from repro.core.relations import num_a
from repro.fc.builders import phi_copy
from repro.fc.syntax import And, Concat, Var
from repro.fcreg.constraints import in_regex
from repro.spanners.selectable import (
    agree_extensionally,
    regular_intersection_trick,
    selection_gap_language,
    spanner_content_relation,
)
from repro.spanners.spanner import extract
from repro.words.generators import l_anbn, words_up_to


class TestContentRelation:
    def test_projection_to_contents(self):
        spanner = extract(".*x{a+}.*")
        contents = spanner_content_relation(spanner, "aab", ("x",))
        assert contents == {("a",), ("aa",)}


class TestExtensionalAgreement:
    def test_factor_extractor_matches_fc(self):
        """Σ* x{(ba)*ba} Σ*  ≍  (x ∈̇ (ba)*ba) — same content relation."""
        spanner = extract(".*x{(ba)*ba}.*")
        x = Var("x")
        formula = in_regex(x, "(ba)+")
        agrees, witness = agree_extensionally(spanner, formula, "ab", 5)
        assert agrees, witness

    def test_disagreement_detected(self):
        spanner = extract(".*x{a}.*")
        x = Var("x")
        formula = in_regex(x, "b")
        agrees, witness = agree_extensionally(spanner, formula, "ab", 2)
        assert not agrees
        assert witness is not None

    def test_arity_mismatch(self):
        spanner = extract(".*x{a}.*")
        x, y = Var("x"), Var("y")
        with pytest.raises(ValueError):
            agree_extensionally(spanner, phi_copy(x, y), "ab", 2)


class TestSelectionGap:
    def test_unselectable_relation_recognises_non_fc_language(self):
        """π_∅ ζ^Num_a over a*-block × (ba)*-block recognises L₁-shaped
        words — exactly the Theorem 5.8 argument, run on real spanners."""
        base = extract("x{a*}y{(ba)*}")
        language = selection_gap_language(
            base, ("x", "y"), num_a, "ab", 6, name="Num_a"
        )
        from repro.words.generators import l1_an_ban

        expected = frozenset(
            w for w in words_up_to("ab", 6) if w in l1_an_ban
        )
        assert language == expected

    def test_regular_intersection_trick(self):
        """{w : |w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ} (the conclusion section)."""
        balanced = frozenset(
            w for w in words_up_to("ab", 6) if w.count("a") == w.count("b")
        )
        def in_a_star_b_star(w):
            return "ba" not in w

        intersection = regular_intersection_trick(balanced, in_a_star_b_star)
        expected = frozenset(w for w in words_up_to("ab", 6) if w in l_anbn)
        assert intersection == expected
