"""Tests for VSet-automata — cross-checked against the recursive evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spanners.regex_formulas import parse_regex_formula
from repro.spanners.spans import Span
from repro.spanners.vset_automata import (
    VOp,
    VSetAutomaton,
    compile_regex_formula,
)

PATTERNS = [
    ".*x{ab|ba}.*",
    "x{a*}y{b*}",
    ".*x{a+}.*",
    "x{.*}",
    "x{(ab)*}b*",
    ".*x{acheive|begining}.*".replace("acheive", "aab").replace(
        "begining", "bba"
    ),
]

documents = st.text(alphabet="ab", max_size=7)


class TestCompilation:
    def test_linear_size(self):
        formula = parse_regex_formula(".*x{ab|ba}.*")
        automaton = compile_regex_formula(formula)
        assert automaton.state_count() < 60
        assert automaton.variables == {"x"}

    def test_vop_repr(self):
        assert repr(VOp("x", True)) == "⊢x"
        assert repr(VOp("x", False)) == "x⊣"


class TestAgreementWithRecursiveEvaluator:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_fixed_documents(self, pattern):
        formula = parse_regex_formula(pattern)
        automaton = compile_regex_formula(formula)
        for document in ("", "a", "ab", "abba", "aabba", "bababa"):
            from_automaton = {
                frozenset(row.items())
                for row in automaton.evaluate(document)
            }
            from_recursion = set(formula.match_spans(document))
            assert from_automaton == from_recursion, (pattern, document)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(PATTERNS), documents)
    def test_random_documents(self, pattern, document):
        formula = parse_regex_formula(pattern)
        automaton = compile_regex_formula(formula)
        from_automaton = {
            frozenset(row.items()) for row in automaton.evaluate(document)
        }
        from_recursion = set(formula.match_spans(document))
        assert from_automaton == from_recursion


class TestValidityEnforcement:
    def test_double_open_rejected(self):
        # Hand-built automaton that opens x twice: no valid runs.
        automaton = VSetAutomaton(
            start=0,
            accepting=frozenset([3]),
            transitions={
                0: [(VOp("x", True), 1)],
                1: [(VOp("x", True), 2)],
                2: [(VOp("x", False), 3)],
            },
            variables=frozenset(["x"]),
        )
        assert len(automaton.evaluate("")) == 0

    def test_unclosed_variable_rejected(self):
        automaton = VSetAutomaton(
            start=0,
            accepting=frozenset([1]),
            transitions={0: [(VOp("x", True), 1)]},
            variables=frozenset(["x"]),
        )
        assert len(automaton.evaluate("")) == 0

    def test_close_before_open_rejected(self):
        automaton = VSetAutomaton(
            start=0,
            accepting=frozenset([1]),
            transitions={0: [(VOp("x", False), 1)]},
            variables=frozenset(["x"]),
        )
        assert len(automaton.evaluate("")) == 0

    def test_valid_hand_built(self):
        # ⊢x, read one letter, x⊣.
        automaton = VSetAutomaton(
            start=0,
            accepting=frozenset([3]),
            transitions={
                0: [(VOp("x", True), 1)],
                1: [("a", 2)],
                2: [(VOp("x", False), 3)],
            },
            variables=frozenset(["x"]),
        )
        relation = automaton.evaluate("a")
        assert list(relation) == [{"x": Span(0, 1)}]
