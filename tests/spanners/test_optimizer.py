"""Tests for the spanner-algebra optimiser: rewrites preserve semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spanners.optimizer import explain, optimize, tree_size
from repro.spanners.spanner import (
    Difference,
    EqualitySelect,
    Join,
    Project,
    SpannerUnion,
    extract,
)

documents = st.text(alphabet="ab", max_size=6)

A_BLOCKS = extract(".*x{a+}.*")
B_BLOCKS = extract(".*y{b+}.*")
PAIRS = Join(A_BLOCKS, extract(".*y{a+}.*"))


def relations_equal(left, right, document):
    return {
        frozenset(row.items()) for row in left.evaluate(document)
    } == {frozenset(row.items()) for row in right.evaluate(document)}


EXPRESSIONS = [
    # π over ∪ and nested π.
    Project(Project(SpannerUnion(PAIRS, PAIRS), ("x", "y")), ("x",)),
    # ζ= over a join where both variables live on one side.
    EqualitySelect(Join(PAIRS, B_BLOCKS), "x", "y"),
    # ζ= over a difference.
    EqualitySelect(Difference(PAIRS, PAIRS), "x", "y"),
    # identity projection and ζ=_{x,x}.
    Project(EqualitySelect(A_BLOCKS, "x", "x"), ("x",)),
    # projection pushdown through a join.
    Project(Join(PAIRS, B_BLOCKS), ("x",)),
    # union idempotence.
    SpannerUnion(A_BLOCKS, A_BLOCKS),
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_fixed_documents(self, expression):
        optimised = optimize(expression)
        for document in ("", "a", "ab", "aab", "abab", "aabba"):
            assert relations_equal(expression, optimised, document), (
                explain(expression, optimised),
                document,
            )

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(EXPRESSIONS), documents)
    def test_random_documents(self, expression, document):
        optimised = optimize(expression)
        assert relations_equal(expression, optimised, document)


class TestRewrites:
    def test_union_idempotence(self):
        assert optimize(SpannerUnion(A_BLOCKS, A_BLOCKS)) == A_BLOCKS

    def test_identity_projection_removed(self):
        assert optimize(Project(A_BLOCKS, ("x",))) == A_BLOCKS

    def test_reflexive_selection_removed(self):
        assert optimize(EqualitySelect(A_BLOCKS, "x", "x")) == A_BLOCKS

    def test_nested_projection_collapsed(self):
        expression = Project(Project(PAIRS, ("x", "y")), ("x",))
        optimised = optimize(expression)
        # No Project-of-Project chains remain.
        for node in optimised.walk():
            if isinstance(node, Project):
                assert not isinstance(node.inner, Project)

    def test_selection_pushed_into_join_side(self):
        expression = EqualitySelect(Join(PAIRS, B_BLOCKS), "x", "y")
        optimised = optimize(expression)
        assert isinstance(optimised, Join)

    def test_class_preserved(self):
        expression = EqualitySelect(Difference(PAIRS, PAIRS), "x", "y")
        optimised = optimize(expression)
        assert optimised.classify() == expression.classify()

    def test_size_reported(self):
        expression = Project(Project(PAIRS, ("x", "y")), ("x",))
        optimised = optimize(expression)
        assert tree_size(optimised) <= tree_size(expression)
        assert "nodes" in explain(expression, optimised)
