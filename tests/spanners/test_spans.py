"""Tests for spans."""

import pytest
from hypothesis import given, strategies as st

from repro.spanners.spans import Span, all_spans, spans_of_occurrences


class TestSpan:
    def test_content(self):
        assert Span(1, 3).content("abba") == "bb"

    def test_empty_span(self):
        assert Span(2, 2).content("abba") == ""
        assert len(Span(2, 2)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Span(3, 1)
        with pytest.raises(ValueError):
            Span(-1, 0)

    def test_out_of_range_content(self):
        with pytest.raises(ValueError):
            Span(0, 5).content("ab")

    def test_relations(self):
        assert Span(1, 2).is_inside(Span(0, 3))
        assert not Span(0, 3).is_inside(Span(1, 2))
        assert Span(0, 1).precedes(Span(1, 2))
        assert Span(0, 1).adjacent_to(Span(1, 2))
        assert not Span(0, 2).adjacent_to(Span(1, 2))

    def test_ordering(self):
        assert Span(0, 1) < Span(0, 2) < Span(1, 1)


class TestEnumeration:
    @given(st.text(alphabet="ab", max_size=8))
    def test_all_spans_count(self, d):
        n = len(d)
        assert sum(1 for _ in all_spans(d)) == (n + 1) * (n + 2) // 2

    def test_occurrences(self):
        spans = spans_of_occurrences("abab", "ab")
        assert spans == [Span(0, 2), Span(2, 4)]

    def test_overlapping_occurrences(self):
        assert len(spans_of_occurrences("aaa", "aa")) == 2

    def test_empty_factor_occurrences(self):
        assert len(spans_of_occurrences("ab", "")) == 3
