"""Tests for spanner expression trees and classification."""

import pytest

from repro.spanners.spanner import (
    Difference,
    EqualitySelect,
    Join,
    Project,
    RelationSelect,
    SpannerUnion,
    extract,
)
from repro.spanners.spans import Span


class TestClassification:
    def test_regular(self):
        spanner = extract(".*x{a}.*") | extract(".*x{b}.*")
        assert spanner.classify() == "regular"

    def test_core(self):
        two = extract(".*x{a+}.*").join(extract(".*y{a+}.*"))
        assert two.eq("x", "y").classify() == "core"

    def test_generalized_core(self):
        two = extract(".*x{a+}.*").join(extract(".*y{a+}.*"))
        spanner = two - two.eq("x", "y")
        assert spanner.classify() == "generalized core"

    def test_extended(self):
        base = extract(".*x{a+}.*")
        spanner = RelationSelect(base, ("x",), lambda u: len(u) > 1)
        assert spanner.classify() == "extended (ζ^R)"


class TestEvaluation:
    def test_extract(self):
        relation = extract(".*x{ab}.*").evaluate("abab")
        assert {"x": Span(0, 2)} in relation
        assert {"x": Span(2, 4)} in relation

    def test_union_schema_check(self):
        with pytest.raises(ValueError):
            SpannerUnion(extract(".*x{a}.*"), extract(".*y{a}.*"))

    def test_join_and_project(self):
        spanner = Project(
            Join(extract(".*x{aa}.*"), extract(".*y{b}.*")), ("x",)
        )
        relation = spanner.evaluate("aab")
        assert relation.schema == {"x"}
        assert len(relation) == 1

    def test_difference_schema_check(self):
        with pytest.raises(ValueError):
            Difference(extract(".*x{a}.*"), extract(".*y{a}.*"))

    def test_equality_select(self):
        two = extract(".*x{a+}.*").join(extract(".*y{a+}.*"))
        equal = two.eq("x", "y")
        relation = equal.evaluate("aba")
        for row in relation:
            assert row["x"].content("aba") == row["y"].content("aba")

    def test_boolean_acceptance(self):
        # Boolean spanner: does the document contain a square aa / bb?
        square = extract(".*x{aa|bb}.*").project()
        assert square.accepts("abba")
        assert not square.accepts("abab")

    def test_language_slice(self):
        square = extract(".*x{aa|bb}.*").project()
        slice_ = square.language_slice("ab", 3)
        assert "aa" in slice_
        assert "aba" not in slice_


class TestCoreSpannerIdioms:
    def test_zeta_eq_finds_repeated_factor(self):
        """ζ= selects positional pairs with equal content — the classic
        core-spanner capability (find repeats)."""
        pattern = ".*x{aa.}.*"
        two = extract(pattern).join(
            extract(pattern.replace("x{", "y{"))
        )
        distinct_repeat = two.eq("x", "y")
        relation = distinct_repeat.evaluate("aabaab")
        pairs = [
            (row["x"], row["y"])
            for row in relation
            if row["x"] != row["y"]
        ]
        assert pairs  # "aab" occurs twice at different positions

    def test_difference_expresses_negation(self):
        """Generalized core spanners can say 'x is a maximal a-block':
        all a-blocks minus the extendable ones."""
        blocks = extract(".*x{a+}.*")
        extendable_left = extract(".*ax{a+}.*")
        extendable_right = extract(".*x{a+}a.*")
        maximal = (blocks - extendable_left) - extendable_right
        relation = maximal.evaluate("aabab" + "aa")  # aabab + aa = aababaa
        contents = {row["x"] for row in relation}
        assert contents == {Span(0, 2), Span(3, 4), Span(5, 7)}
