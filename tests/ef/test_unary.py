"""Tests for the arithmetic unary solver and its generic cross-validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.equivalence import equiv_k
from repro.ef.unary import (
    UnaryGameSolver,
    minimal_equivalent_pair,
    unary_equiv_k,
    unary_equivalence_classes,
)

small = st.integers(min_value=0, max_value=7)


class TestCrossValidation:
    """The int encoding must agree with the generic string solver."""

    @settings(max_examples=60, deadline=None)
    @given(small, small, st.integers(0, 2))
    def test_agrees_with_generic_solver(self, p, q, k):
        assert unary_equiv_k(p, q, k) == equiv_k(
            "a" * p, "a" * q, k, alphabet="a"
        )

    def test_known_equivalent_pair(self):
        assert unary_equiv_k(12, 14, 2)
        assert unary_equiv_k(3, 4, 1)
        assert unary_equiv_k(1, 2, 0)

    def test_known_inequivalent(self):
        assert not unary_equiv_k(12, 13, 2)
        assert not unary_equiv_k(3, 4, 2)
        assert not unary_equiv_k(11, 13, 2)


class TestBasicProperties:
    @given(small, st.integers(0, 3))
    def test_reflexive(self, p, k):
        assert unary_equiv_k(p, p, k)

    @given(small, small, st.integers(0, 2))
    def test_symmetric(self, p, q, k):
        assert unary_equiv_k(p, q, k) == unary_equiv_k(q, p, k)

    @given(small, small)
    def test_monotone_in_k(self, p, q):
        results = [unary_equiv_k(p, q, k) for k in (0, 1, 2)]
        for earlier, later in zip(results, results[1:]):
            if later:
                assert earlier

    def test_negative_exponents_rejected(self):
        with pytest.raises(ValueError):
            UnaryGameSolver(-1, 3)

    def test_empty_vs_nonempty_rank_zero(self):
        # Constants separate a^0 from a^n (n ≥ 1): the letter a is ⊥ in
        # the empty word's structure.
        assert not unary_equiv_k(0, 1, 0)
        assert not unary_equiv_k(0, 5, 0)


class TestMinimalPairs:
    """Lemma 3.6's witness table (the E03 experiment rows)."""

    def test_rank_0(self):
        assert minimal_equivalent_pair(0, 8) == (1, 2)

    def test_rank_1(self):
        assert minimal_equivalent_pair(1, 8) == (3, 4)

    def test_rank_2(self):
        assert minimal_equivalent_pair(2, 16) == (12, 14)

    def test_none_when_bound_too_small(self):
        assert minimal_equivalent_pair(2, 8) is None


class TestEquivalenceClasses:
    def test_rank_1_classes(self):
        # ≡₁ over {0..6}: 0,1,2 singletons, then everything ≥ 3 merges.
        classes = unary_equivalence_classes(1, 6)
        assert [0] in classes
        assert [1] in classes
        assert [2] in classes
        assert [3, 4, 5, 6] in classes

    def test_rank_2_parity_from_threshold(self):
        # ≡₂ classes become parity-periodic from 12: 12 ~ 14 ~ 16.
        classes = unary_equivalence_classes(2, 16)
        merged = next(cls for cls in classes if 12 in cls)
        assert {12, 14, 16} <= set(merged)
        assert 13 not in merged

    def test_classes_partition(self):
        classes = unary_equivalence_classes(1, 8)
        flattened = sorted(n for cls in classes for n in cls)
        assert flattened == list(range(9))
