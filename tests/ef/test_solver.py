"""Tests for the exact EF-game solver.

Covers Example 3.3, Theorem 3.4 consistency (via the FC(k) sentence pool),
Lemma 3.5's contrapositive (distinguishing formulas force ≢_k), and basic
sanity (reflexivity, monotonicity in k, symmetry).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.ef.solver import GameSolver, solve_equivalence
from repro.fc.builders import phi_vbv, phi_ww
from repro.fc.enumeration import sentence_pool
from repro.fc.semantics import defines_language_member
from repro.fc.structures import word_structure
from repro.fc.syntax import quantifier_rank

short_words = st.text(alphabet="ab", max_size=4)


class TestBasicProperties:
    @given(short_words, st.integers(0, 2))
    def test_reflexive(self, w, k):
        assert equiv_k(w, w, k, alphabet="ab")

    @given(short_words, short_words)
    def test_symmetric(self, w, v):
        assert equiv_k(w, v, 1, alphabet="ab") == equiv_k(
            v, w, 1, alphabet="ab"
        )

    @given(short_words, short_words)
    def test_monotone_in_k(self, w, v):
        # More rounds only help Spoiler: ≡_2 implies ≡_1 implies ≡_0.
        results = [equiv_k(w, v, k, alphabet="ab") for k in (0, 1, 2)]
        for earlier, later in zip(results, results[1:]):
            if later:
                assert earlier

    def test_distinct_words_eventually_distinguished(self):
        # Short distinct words are separated within a few rounds.
        assert distinguishing_rank("ab", "ba", 3, alphabet="ab") is not None

    def test_rank_zero_constant_separation(self):
        # "a" vs "": the constants vector alone separates (ε vs ⊥ ... the
        # letter a is ⊥ in the empty word's structure).
        assert not equiv_k("a", "", 0, alphabet="a")


class TestExampleThreeThree:
    """Example 3.3: Spoiler wins the 2-round game on a^{2i} vs a^{2i-1}."""

    @pytest.mark.parametrize("i", [1, 2, 3])
    def test_not_equiv_2(self, i):
        assert not equiv_k("a" * (2 * i), "a" * (2 * i - 1), 2, alphabet="a")

    @pytest.mark.parametrize("i", [2, 3])
    def test_equiv_1_for_larger(self, i):
        # One round is not enough to separate long unary words (both ≥ 3).
        assert equiv_k("a" * (2 * i), "a" * (2 * i - 1), 1, alphabet="a")

    def test_spoiler_winning_move_exists(self):
        solver = GameSolver(
            word_structure("aaaa", "a"), word_structure("aaa", "a")
        )
        move = solver.spoiler_winning_move(2)
        assert move is not None

    def test_paper_strategy_first_move(self):
        # The paper's Spoiler opens with the whole word a^{2i}; verify that
        # this specific move is winning (no Duplicator response survives).
        solver = GameSolver(
            word_structure("aaaa", "a"), word_structure("aaa", "a")
        )
        from repro.ef.game import Move

        assert solver.winning_response(2, frozenset(), Move("A", "aaaa")) is None


class TestEhrenfeuchtConsistency:
    """Theorem 3.4: ≡_k implies agreement on all FC(k) sentences (we check
    a structured pool — a necessary condition the solver must satisfy)."""

    POOL_1 = list(sentence_pool(1, "ab", max_atoms=1))

    @settings(max_examples=25, deadline=None)
    @given(short_words, short_words)
    def test_equiv_1_pairs_agree_on_pool(self, w, v):
        if not equiv_k(w, v, 1, alphabet="ab"):
            return
        for sentence in self.POOL_1:
            assert defines_language_member(w, sentence, "ab") == (
                defines_language_member(v, sentence, "ab")
            ), f"{sentence!r} separates {w!r} ≡_1 {v!r}"

    def test_explicit_formula_forces_inequivalence(self):
        # φ_ww has rank ≤ 3 and separates abab from aba, so aba ≢_3 abab.
        phi = phi_ww()
        k = quantifier_rank(phi)
        assert defines_language_member("abab", phi, "ab")
        assert not defines_language_member("aba", phi, "ab")
        assert not equiv_k("abab", "aba", k, alphabet="ab")

    def test_vbv_formula_matches_prop_3_7(self):
        # φ_vbv (rank 5) separates a^1 b a^1 from a^2 b a^1; the solver
        # must therefore report ≢_k for some k ≤ 5 (it does at small k —
        # short words are easy to tell apart; this checks consistency).
        phi = phi_vbv()
        assert defines_language_member("aba", phi, "ab")
        assert not defines_language_member("aaba", phi, "ab")
        rank = distinguishing_rank("aba", "aaba", 5, alphabet="ab")
        assert rank is not None
        assert rank <= quantifier_rank(phi)


class TestSolverMechanics:
    def test_one_shot_helper(self):
        assert solve_equivalence(
            word_structure("ab", "ab"), word_structure("ab", "ab"), 2
        )

    def test_memo_grows(self):
        solver = GameSolver(
            word_structure("aaa", "a"), word_structure("aaaa", "a")
        )
        solver.duplicator_wins(2)
        assert solver.memo_size() > 0

    def test_inconsistent_start_is_spoiler_win(self):
        solver = GameSolver(
            word_structure("aa", "a"), word_structure("aaa", "a")
        )
        bad = frozenset({("aa", "a")})  # breaks constants mirroring
        assert not solver.duplicator_wins(1, bad)

    def test_winning_response_requires_rounds(self):
        solver = GameSolver(
            word_structure("aa", "a"), word_structure("aa", "a")
        )
        from repro.ef.game import Move

        with pytest.raises(ValueError):
            solver.winning_response(0, frozenset(), Move("A", "a"))
