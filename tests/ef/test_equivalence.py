"""Tests for the public ≡_k API."""

import pytest

from repro.ef.equivalence import (
    UnaryWitness,
    distinguishing_rank,
    equiv_k,
    find_equivalent_unary_pair,
    solver_for,
)


class TestEquivK:
    def test_identical_words_shortcut(self):
        assert equiv_k("abba", "abba", 5)

    def test_alphabet_inference(self):
        # No explicit alphabet: letters of both words.
        assert not equiv_k("a", "b", 1)

    def test_explicit_alphabet_with_spare_letters(self):
        # A spare constant is ⊥ on both sides and changes nothing.
        assert equiv_k("a" * 3, "a" * 4, 1, alphabet="ab") == equiv_k(
            "a" * 3, "a" * 4, 1, alphabet="a"
        )

    def test_solver_cache_reuse(self):
        s1 = solver_for("aa", "aaa", "a")
        s2 = solver_for("aa", "aaa", "a")
        assert s1 is s2


class TestDistinguishingRank:
    def test_equal_words(self):
        assert distinguishing_rank("ab", "ab", 3) is None

    def test_example_3_3(self):
        rank = distinguishing_rank("aaaa", "aaa", 3, alphabet="a")
        assert rank == 2  # one round is not enough, two are

    def test_rank_zero_case(self):
        assert distinguishing_rank("a", "", 2, alphabet="a") == 0

    def test_none_within_bound(self):
        assert distinguishing_rank("a" * 12, "a" * 14, 2, alphabet="a") is None


class TestUnaryWitnessSearch:
    def test_k0(self):
        pair = find_equivalent_unary_pair(0, max_exponent=8)
        assert pair == (1, 2)
        assert isinstance(pair, UnaryWitness)
        assert pair.p == 1 and pair.q == 2

    def test_k1(self):
        assert find_equivalent_unary_pair(1, max_exponent=8) == (3, 4)

    def test_exhausted_range(self):
        assert find_equivalent_unary_pair(2, max_exponent=6) is None
