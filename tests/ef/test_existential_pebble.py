"""Tests for existential EF games and pebble games (conclusion directions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.equivalence import equiv_k
from repro.ef.existential import (
    existential_equivalent,
    existential_preorder,
    positive_homomorphism,
)
from repro.ef.pebble import pebble_distinguishing_rounds, pebble_equiv
from repro.fc.structures import word_structure

short = st.text(alphabet="ab", max_size=4)


class TestPositiveHomomorphism:
    def test_forward_only(self):
        A = word_structure("aa", "a")
        B = word_structure("aaa", "a")
        # aa = a·a holds in A and (mapped identically) in B.
        assert positive_homomorphism(A, B, ("aa", "a"), ("aa", "a"))
        # but mapping aa ↦ aaa breaks the concatenation fact.
        assert not positive_homomorphism(A, B, ("aa", "a"), ("aaa", "a"))

    def test_negative_facts_not_required(self):
        # In A: 'a' ≠ 'aa'; mapping both to 'a' in B merges them — that
        # would break a *negative* fact, which ∃⁺ does not preserve...
        # but it breaks a positive one too (a = a·ε vs aa = a·ε), so the
        # homomorphism check distinguishes carefully:
        A = word_structure("aa", "a")
        B = word_structure("a", "a")
        assert not positive_homomorphism(A, B, ("aa",), ("a",))
        # ('aa' equals the constant-closed term a·a in A; in B the image
        # 'a' is not a·a, a positive concatenation fact lost.)


class TestExistentialPreorder:
    @given(short, st.integers(0, 2))
    def test_reflexive(self, w, k):
        assert existential_preorder(w, w, k, "ab")

    def test_substructure_direction(self):
        # Everything ∃⁺-true in a^3 stays true in a^5 at small rank.
        assert existential_preorder("aaa", "aaaaa", 2)
        assert not existential_preorder("aaaaa", "aaa", 2)

    def test_asymmetry_example(self):
        assert existential_preorder("a", "aa", 1)
        assert not existential_preorder("aa", "a", 1)

    @given(short, short, st.integers(0, 1))
    def test_full_equivalence_implies_existential(self, w, v, k):
        if equiv_k(w, v, k, alphabet="ab"):
            assert existential_preorder(w, v, k, "ab")
            assert existential_preorder(v, w, k, "ab")

    @given(short, short)
    def test_equivalence_is_two_directions(self, w, v):
        both = existential_preorder(w, v, 1, "ab") and existential_preorder(
            v, w, 1, "ab"
        )
        assert existential_equivalent(w, v, 1, "ab") == both


class TestPebbleGames:
    @given(short, st.integers(1, 2), st.integers(0, 2))
    def test_reflexive(self, w, p, m):
        assert pebble_equiv(w, w, p, m, "ab")

    def test_matches_plain_game_when_rounds_equal_pebbles(self):
        # With p pebbles and m ≤ p rounds, no pebble must be reused, so
        # the game coincides with the plain m-round game.
        for w, v in (("aaaa", "aaa"), ("ab", "ba")):
            for m in (1, 2):
                assert pebble_equiv(w, v, 2, m) == equiv_k(w, v, m)

    def test_pebble_reuse_beats_rank(self):
        """a^12 ≡₂ a^14 (plain rank-2), but 2 pebbles with 3 rounds
        separate them: re-placing a pebble trades rank for variables —
        the FCᵖ phenomenon the conclusion points at."""
        assert equiv_k("a" * 12, "a" * 14, 2, alphabet="a")
        assert pebble_equiv("a" * 12, "a" * 14, 2, 2, "a")
        assert not pebble_equiv("a" * 12, "a" * 14, 2, 3, "a")

    def test_distinguishing_rounds(self):
        assert pebble_distinguishing_rounds("aaaa", "aaa", 2, 3, "a") == 2
        assert pebble_distinguishing_rounds("ab", "ab", 2, 3) is None

    def test_one_pebble_is_weak(self):
        # A single pebble can never relate two elements, so it only sees
        # constants and unary facts; a^5 vs a^6 survive several rounds.
        assert pebble_equiv("a" * 5, "a" * 6, 1, 3, "a")
