"""Tests for strategy objects and the exhaustive verification harness."""

import pytest

from repro.ef.game import GameArena, Move, Play
from repro.ef.solver import GameSolver
from repro.ef.strategies import (
    GreedySolverSpoiler,
    IdentityDuplicator,
    RandomSpoiler,
    ScriptedSpoiler,
    SolverDuplicator,
    exhaustively_verify_duplicator,
    play_game,
)
from repro.fc.structures import word_structure


def arena(w, v, k, alphabet="ab"):
    return GameArena(word_structure(w, alphabet), word_structure(v, alphabet), k)


class TestIdentityDuplicator:
    def test_echoes(self):
        duplicator = IdentityDuplicator()
        assert duplicator.respond(Move("A", "ab")) == "ab"

    @pytest.mark.parametrize("w", ["", "a", "ab", "aab"])
    def test_survives_everything_on_equal_words(self, w):
        result = exhaustively_verify_duplicator(
            arena(w, w, 2), IdentityDuplicator
        )
        assert result.survived
        assert result.lines_checked > 0


class TestSolverDuplicator:
    def test_wins_on_equivalent_pair(self):
        # a^12 ≡_2 a^14: optimal play survives every Spoiler line.
        solver = GameSolver(
            word_structure("a" * 12, "a"), word_structure("a" * 14, "a")
        )
        result = exhaustively_verify_duplicator(
            arena("a" * 12, "a" * 14, 2, alphabet="a"),
            lambda: SolverDuplicator(solver, 2),
        )
        assert result.survived

    def test_raises_in_lost_position(self):
        solver = GameSolver(
            word_structure("aaaa", "a"), word_structure("aaa", "a")
        )
        duplicator = SolverDuplicator(solver, 2)
        with pytest.raises(RuntimeError):
            # The whole-word move is Spoiler's Example 3.3 kill shot.
            duplicator.respond(Move("A", "aaaa"))
            duplicator.respond(Move("A", "aa"))

    def test_round_budget_enforced(self):
        solver = GameSolver(
            word_structure("a", "a"), word_structure("a", "a")
        )
        duplicator = SolverDuplicator(solver, 1)
        duplicator.respond(Move("A", "a"))
        with pytest.raises(RuntimeError):
            duplicator.respond(Move("A", ""))

    def test_clone_is_independent(self):
        solver = GameSolver(
            word_structure("aa", "a"), word_structure("aa", "a")
        )
        original = SolverDuplicator(solver, 2)
        branch = original.clone()
        original.respond(Move("A", "a"))
        assert branch.used_rounds == 0


class TestSpoilers:
    def test_scripted(self):
        spoiler = ScriptedSpoiler([Move("A", "aa"), lambda play: Move("B", "a")])
        game = arena("aa", "aa", 2, alphabet="a")
        play = play_game(game, spoiler, IdentityDuplicator())
        assert play.duplicator_won()

    def test_scripted_exhaustion(self):
        spoiler = ScriptedSpoiler([])
        with pytest.raises(RuntimeError):
            spoiler.choose(Play(arena("a", "a", 1)))

    def test_random_reproducible(self):
        import random

        game = arena("abab", "abab", 3)
        s1 = RandomSpoiler(random.Random(7))
        s2 = RandomSpoiler(random.Random(7))
        p1 = play_game(game, s1, IdentityDuplicator())
        p2 = play_game(game, s2, IdentityDuplicator())
        assert p1.tuples() == p2.tuples()

    def test_greedy_spoiler_wins_inequivalent(self):
        # Example 3.3: Spoiler beats ANY Duplicator on a^4 vs a^3 in 2
        # rounds; the greedy spoiler must beat the (doomed) identity-like
        # behaviour of optimal play extraction.
        solver = GameSolver(
            word_structure("aaaa", "a"), word_structure("aaa", "a")
        )
        spoiler = GreedySolverSpoiler(solver, 2)
        game = arena("aaaa", "aaa", 2, alphabet="a")

        class BestEffortDuplicator:
            """Respond with a same-length factor when possible."""

            def respond(self, move):
                other = "aaa" if move.side == "A" else "aaaa"
                value = move.element
                if value is None:
                    return None
                length = min(len(value), len(other))
                return other[:length]

            def clone(self):
                return BestEffortDuplicator()

        play = play_game(game, spoiler, BestEffortDuplicator())
        assert not play.duplicator_won()


class TestExhaustiveVerification:
    def test_counts_all_lines(self):
        # 1-round game on "a" vs "a": Spoiler moves = 2 sides × 2 non-⊥
        # elements = 4 lines.
        result = exhaustively_verify_duplicator(
            arena("a", "a", 1, alphabet="a"), IdentityDuplicator
        )
        assert result.survived
        assert result.lines_checked == 4

    def test_detects_bad_strategy(self):
        class EpsilonDuplicator:
            def respond(self, move):
                return ""

            def clone(self):
                return EpsilonDuplicator()

        result = exhaustively_verify_duplicator(
            arena("ab", "ab", 1), EpsilonDuplicator
        )
        assert not result.survived
        assert result.losing_line is not None
        assert not result.losing_line.duplicator_won()
