"""Tests for Hintikka characteristic sentences (χ^k_w ⟺ ≡_k)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.characteristic import characteristic_sentence
from repro.ef.equivalence import equiv_k
from repro.fc.semantics import models
from repro.fc.syntax import free_variables, quantifier_rank
from repro.words.generators import words_up_to

short = st.text(alphabet="ab", max_size=2)
probes = st.text(alphabet="ab", max_size=3)


class TestShape:
    def test_rank_bound(self):
        for k in (0, 1, 2):
            chi = characteristic_sentence("ab", k, "ab")
            assert quantifier_rank(chi) <= k

    def test_sentence(self):
        chi = characteristic_sentence("a", 1, "ab")
        assert not free_variables(chi)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            characteristic_sentence("a", -1, "ab")


class TestEhrenfeuchtTheorem:
    """models(v, χ^k_w) ⟺ w ≡_k v — the theorem, checked both ways."""

    @pytest.mark.parametrize("k", [0, 1])
    def test_exhaustive_small_grid(self, k):
        for w in words_up_to("ab", 2):
            chi = characteristic_sentence(w, k, "ab")
            for v in words_up_to("ab", 3):
                assert models(v, chi, "ab") == equiv_k(
                    w, v, k, alphabet="ab"
                ), (w, v, k)

    @settings(max_examples=25, deadline=None)
    @given(short, probes)
    def test_random_pairs_k1(self, w, v):
        chi = characteristic_sentence(w, 1, "ab")
        assert models(v, chi, "ab") == equiv_k(w, v, 1, alphabet="ab")

    def test_rank_2_spot_checks(self):
        chi = characteristic_sentence("ab", 2, "ab")
        assert models("ab", chi, "ab")
        for v in ("ba", "aab", "abab", ""):
            assert not models(v, chi, "ab")

    def test_self_satisfaction(self):
        # w always satisfies its own characteristic sentence.
        for w in ("", "a", "ab", "aab"):
            for k in (0, 1):
                chi = characteristic_sentence(w, k, "ab")
                assert models(w, chi, "ab")

    def test_unary_witness_pair_shares_type(self):
        # a³ ≡₁ a⁴, so each satisfies the other's rank-1 characteristic
        # sentence.
        chi3 = characteristic_sentence("aaa", 1, "a")
        assert models("aaaa", chi3, "a")
        chi4 = characteristic_sentence("aaaa", 1, "a")
        assert models("aaa", chi4, "a")
        # ... but not at rank 2.
        chi3_2 = characteristic_sentence("aaa", 2, "a")
        assert not models("aaaa", chi3_2, "a")
