"""Machine checks of the paper's constructive strategies.

The Pseudo-Congruence and Primitive Power strategies are verified
*exhaustively*: the composed Duplicator survives every Spoiler line of the
k-round game.  Fully-provisioned look-ups (the k+r+2 / k+3 budgets the
proofs demand) are only exactly certifiable at tiny ranks — the unary ≡₃
witness pair exceeds exponent 48 — so the suite combines:

* identity instances (p = q / vᵢ = wᵢ) at k ≤ 2, which exercise the full
  splitting/factorisation machinery with an unconditionally winning
  look-up;
* genuinely-different instances built from the exactly-known unary pairs,
  with look-up budgets at the highest certifiable rank;
* direct exact-solver checks of the *conclusions* on small instances.
"""

import pytest

from repro.ef.composition import (
    FringePreservingUnaryDuplicator,
    PrimitivePowerDuplicator,
    PseudoCongruenceDuplicator,
    boundary_split,
)
from repro.ef.equivalence import equiv_k, solver_for
from repro.ef.game import GameArena, Move
from repro.ef.strategies import (
    IdentityDuplicator,
    SolverDuplicator,
    exhaustively_verify_duplicator,
)
from repro.fc.structures import word_structure


class TestBoundarySplit:
    def test_basic(self):
        # u = "ba" straddling "ab"·"ab"... take w1=ab, w2=ab, u=ba.
        u1, u2 = boundary_split("ba", "ab", "ab")
        assert (u1, u2) == ("b", "a")

    def test_longer(self):
        u1, u2 = boundary_split("abba", "aab", "baa")
        assert u1 + u2 == "abba"
        assert "aab".endswith(u1)
        assert "baa".startswith(u2)

    def test_non_straddling_rejected(self):
        with pytest.raises(ValueError):
            boundary_split("a", "ab", "ba")


class TestPseudoCongruenceStrategy:
    """Lemma 4.4's composed Duplicator."""

    def test_side_condition_checked(self):
        with pytest.raises(ValueError):
            PseudoCongruenceDuplicator(
                # Facs(ab) ∩ Facs(ba) = {ε, a, b} but Facs(aa) ∩ Facs(bb) = {ε}.
                "ab", "ba", "aa", "bb",
                IdentityDuplicator(),
                IdentityDuplicator(),
            )

    @pytest.mark.parametrize(
        "w1,w2", [("a", "b"), ("ab", "ba"), ("aab", "bba")]
    )
    def test_identity_instance_survives_exhaustively(self, w1, w2):
        # v1 = w1, v2 = w2: both look-ups are identity, yet all moves route
        # through the full case analysis (shared factors, straddling
        # splits).  Exhaustive over 2 rounds.
        duplicator_factory = lambda: PseudoCongruenceDuplicator(  # noqa: E731
            w1, w2, w1, w2, IdentityDuplicator(), IdentityDuplicator()
        )
        arena = GameArena(
            word_structure(w1 + w2, "ab"),
            word_structure(w1 + w2, "ab"),
            2,
        )
        result = exhaustively_verify_duplicator(arena, duplicator_factory)
        assert result.survived, result.losing_line

    def test_example_4_5_instance_k1(self):
        """a^12·b ≡₁ a^14·b via the composed strategy (look-ups at 2
        rounds, certified: a^12 ≡₂ a^14 and b ≡ b, r = 0, k = 1 —
        wait, k + r + 2 = 3 > 2, so this look-up is under-provisioned by
        one round; the strategy must still survive the 1-round game, and
        the exact solver confirms the conclusion independently."""
        p, q = 12, 14
        w1, v1 = "a" * p, "a" * q

        def factory():
            return PseudoCongruenceDuplicator(
                w1,
                "b",
                v1,
                "b",
                SolverDuplicator(solver_for(w1, v1, "ab"), 2),
                IdentityDuplicator(),
            )

        arena = GameArena(
            word_structure(w1 + "b", "ab"),
            word_structure(v1 + "b", "ab"),
            1,
        )
        result = exhaustively_verify_duplicator(arena, factory)
        assert result.survived, result.losing_line

    def test_conclusion_cross_check_k1(self):
        # Direct exact check of the Example 4.5 conclusion at k = 1.
        assert equiv_k("a" * 12 + "b" * 3, "a" * 14 + "b" * 3, 1, "ab")

    def test_straddling_response_is_factor(self):
        # Feed a straddling factor directly and check the response shape.
        duplicator = PseudoCongruenceDuplicator(
            "a" * 12, "b" * 3, "a" * 14, "b" * 3,
            SolverDuplicator(solver_for("a" * 12, "a" * 14, "ab"), 2),
            IdentityDuplicator(),
        )
        response = duplicator.respond(Move("A", "aabb"))
        assert response in "a" * 14 + "b" * 3
        assert response.endswith("bb")


class TestPrimitivePowerStrategy:
    """Lemma 4.8's exp_w look-up strategy."""

    def test_requires_primitive_base(self):
        with pytest.raises(ValueError):
            PrimitivePowerDuplicator("abab", 2, 3, IdentityDuplicator())

    @pytest.mark.parametrize("base", ["ab", "aab", "aba"])
    def test_identity_instance_survives_exhaustively(self, base):
        # p = q: the look-up is identity on a^p, but every response still
        # goes through exp_w + Lemma 4.7 refactoring.
        p = 3

        def factory():
            return PrimitivePowerDuplicator(base, p, p, IdentityDuplicator())

        arena = GameArena(
            word_structure(base * p, "ab"),
            word_structure(base * p, "ab"),
            2,
        )
        result = exhaustively_verify_duplicator(arena, factory)
        assert result.survived, result.losing_line

    def test_underprovisioned_lookup_fails(self):
        """Negative control: a merely rank-2 winning look-up (the best the
        exact solver can certify) is NOT enough — its a^11 ↦ a^11 response
        maps a boundary factor of (ab)^14 to a non-factor of (ab)^12.
        This is the +3 round slack of Lemma 4.8 earning its keep."""
        p, q = 12, 14

        def factory():
            lookup = SolverDuplicator(solver_for("a" * p, "a" * q, "a"), 2)
            return PrimitivePowerDuplicator("ab", p, q, lookup)

        arena = GameArena(
            word_structure("ab" * p, "ab"),
            word_structure("ab" * q, "ab"),
            1,
        )
        with pytest.raises(ValueError):
            exhaustively_verify_duplicator(arena, factory)

    def test_differing_powers_k1_fringe_preserving(self):
        """(ab)^12 ≡₁ (ab)^14 via the composed strategy with the
        fringe-preserving look-up (the pattern Claims D.1/D.2 force on a
        fully-provisioned strategy), verified against every Spoiler line."""
        p, q = 12, 14

        def factory():
            return PrimitivePowerDuplicator(
                "ab", p, q, FringePreservingUnaryDuplicator(p, q)
            )

        arena = GameArena(
            word_structure("ab" * p, "ab"),
            word_structure("ab" * q, "ab"),
            1,
        )
        result = exhaustively_verify_duplicator(arena, factory)
        assert result.survived, result.losing_line

    def test_conclusion_cross_check_k1(self):
        # Independent exact-solver check of the same conclusion.
        assert equiv_k("ab" * 12, "ab" * 14, 1, "ab")

    def test_response_shape(self):
        lookup = SolverDuplicator(solver_for("a" * 12, "a" * 14, "a"), 2)
        duplicator = PrimitivePowerDuplicator("ab", 12, 14, lookup)
        # b(ab)^3 a has exp = 3; response must keep the b/a fringes.
        response = duplicator.respond(Move("A", "b" + "ab" * 3 + "a"))
        assert response.startswith("b")
        assert response.endswith("a")
        from repro.words.primitivity import exponent

        assert exponent("ab", response) >= 1

    def test_exp_zero_transfers_verbatim(self):
        lookup = SolverDuplicator(solver_for("a" * 12, "a" * 14, "a"), 2)
        duplicator = PrimitivePowerDuplicator("ab", 12, 14, lookup)
        assert duplicator.respond(Move("A", "b")) == "b"

    def test_clone_independence(self):
        lookup = SolverDuplicator(solver_for("a" * 12, "a" * 14, "a"), 2)
        original = PrimitivePowerDuplicator("ab", 12, 14, lookup)
        branch = original.clone()
        original.respond(Move("A", "ab"))
        # The clone's look-up has consumed no rounds.
        assert branch.lookup.used_rounds == 0
