"""Tests for Definition 3.1 partial isomorphisms."""

import pytest
from hypothesis import given, strategies as st

from repro.ef.partial_iso import (
    extend_with_constants,
    find_violation,
    is_partial_isomorphism,
)
from repro.fc.structures import BOTTOM, word_structure

A = word_structure("aab", "ab")
B = word_structure("aab", "ab")


class TestBasics:
    def test_empty_tuples(self):
        assert is_partial_isomorphism(A, B, (), ())

    def test_identity_pairs(self):
        assert is_partial_isomorphism(A, B, ("a", "ab"), ("a", "ab"))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            is_partial_isomorphism(A, B, ("a",), ())


class TestConstantCondition:
    def test_letter_must_mirror(self):
        violation = find_violation(A, B, ("a",), ("b",))
        assert violation is not None
        assert violation.kind == "constant"

    def test_epsilon_must_mirror(self):
        violation = find_violation(A, B, ("",), ("a",))
        assert violation is not None
        assert violation.kind == "constant"

    def test_bottom_against_letter(self):
        # ⊥ is the interpretation of no constant in A (all letters occur),
        # so pairing ⊥ with a letter breaks the constant pattern.
        violation = find_violation(A, B, (BOTTOM,), ("a",))
        assert violation is not None

    def test_bottom_with_bottom(self):
        assert is_partial_isomorphism(A, B, (BOTTOM,), (BOTTOM,))


class TestEqualityCondition:
    def test_repeat_must_mirror(self):
        violation = find_violation(A, B, ("aa", "aa"), ("aa", "ab"))
        assert violation is not None
        assert violation.kind == "equality"

    def test_distinct_must_mirror(self):
        violation = find_violation(A, B, ("aa", "ab"), ("aa", "aa"))
        assert violation is not None
        assert violation.kind == "equality"


class TestConcatCondition:
    def test_concat_must_mirror(self):
        # a·a = aa on the left; pairing aa ↦ ab, a ↦ a breaks R∘.
        violation = find_violation(A, B, ("aa", "a"), ("ab", "a"))
        assert violation is not None
        assert violation.kind == "concat"

    def test_self_concat(self):
        # ε = ε·ε must mirror; pairing ε with a fails the constant check
        # first, so use two-element tuples exercising i=j=k patterns.
        assert is_partial_isomorphism(A, B, ("aa", "a"), ("aa", "a"))

    def test_cross_structure(self):
        C = word_structure("aabb", "ab")
        # In C, ab exists and a·b = ab; map aab's pieces inconsistently.
        violation = find_violation(
            A, C, ("a", "b", "ab"), ("a", "b", "bb")
        )
        assert violation is not None
        assert violation.kind == "concat"


class TestWithConstants:
    def test_extension_includes_alphabet_and_epsilon(self):
        full_a, full_b = extend_with_constants(A, B, ("aa",), ("aa",))
        assert full_a == ("aa", "a", "b", "")
        assert full_b == ("aa", "a", "b", "")

    def test_game_win_condition_example(self):
        # Example 3.3's losing position: a1 = a^2, b1 = a on a^2 vs a^1.
        W = word_structure("aa", "a")
        V = word_structure("a", "a")
        full_a, full_b = extend_with_constants(W, V, ("aa",), ("a",))
        violation = find_violation(W, V, full_a, full_b)
        # (a, a) constants force b1 = a, but then a1 = aa has a1 = a·a
        # while b1 = a has no such product... actually a1=aa vs b1=a:
        # equality a1 == constant-a is False vs True — a violation.
        assert violation is not None


@given(st.text(alphabet="ab", max_size=6), st.data())
def test_identity_mapping_always_partial_iso(w, data):
    structure = word_structure(w, "ab")
    pool = sorted(structure.universe_factors)
    chosen = data.draw(
        st.lists(st.sampled_from(pool), max_size=4)
    ) if pool else []
    tup = tuple(chosen)
    full_a, full_b = extend_with_constants(structure, structure, tup, tup)
    assert is_partial_isomorphism(structure, structure, full_a, full_b)
