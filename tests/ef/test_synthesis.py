"""Tests for distinguishing-formula synthesis (constructive Theorem 3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ef.equivalence import equiv_k
from repro.ef.synthesis import (
    SynthesisFailure,
    synthesize_distinguishing_sentence,
)
from repro.fc.semantics import defines_language_member
from repro.fc.syntax import free_variables, quantifier_rank

short = st.text(alphabet="ab", max_size=4)


def certificate_is_valid(w, v, k, alphabet):
    phi = synthesize_distinguishing_sentence(w, v, k, alphabet)
    assert quantifier_rank(phi) <= k
    assert not free_variables(phi)
    assert defines_language_member(w, phi, alphabet)
    assert not defines_language_member(v, phi, alphabet)
    return phi


class TestCertificates:
    @pytest.mark.parametrize(
        "w,v,k",
        [
            ("aaaa", "aaa", 2),
            ("aaaa", "aa", 1),
            ("a", "", 0),
            ("ab", "ba", 2),
            ("aab", "aba", 2),
            ("abab", "abba", 2),
        ],
    )
    def test_known_pairs(self, w, v, k):
        alphabet = "".join(sorted(set(w) | set(v))) or "a"
        certificate_is_valid(w, v, k, alphabet)

    def test_equivalent_pair_fails(self):
        with pytest.raises(SynthesisFailure):
            synthesize_distinguishing_sentence("aaa", "aaaa", 1, "a")

    def test_same_word_fails(self):
        with pytest.raises(SynthesisFailure):
            synthesize_distinguishing_sentence("ab", "ab", 3, "ab")

    def test_example_3_3_certificate(self):
        # Spoiler's Example 3.3 win becomes a rank-≤2 separating sentence.
        phi = certificate_is_valid("aaaa", "aaa", 2, "a")
        assert quantifier_rank(phi) <= 2


class TestAgreementWithSolver:
    """Synthesis succeeds exactly when the solver reports ≢_k —
    Theorem 3.4, both directions, machine-checked on a random sample."""

    @settings(max_examples=40, deadline=None)
    @given(short, short, st.integers(0, 2))
    def test_synthesis_iff_inequivalent(self, w, v, k):
        separable = not equiv_k(w, v, k, alphabet="ab")
        try:
            phi = synthesize_distinguishing_sentence(w, v, k, "ab")
            produced = True
            assert defines_language_member(w, phi, "ab")
            assert not defines_language_member(v, phi, "ab")
            assert quantifier_rank(phi) <= k
        except SynthesisFailure:
            produced = False
        assert produced == separable
