"""Tests for game arenas and plays."""

import pytest

from repro.ef.game import GameArena, Move, Play
from repro.fc.structures import BOTTOM, word_structure


def arena(w: str, v: str, k: int, alphabet: str = "ab") -> GameArena:
    return GameArena(
        word_structure(w, alphabet), word_structure(v, alphabet), k
    )


class TestArena:
    def test_universe_includes_bottom(self):
        game = arena("ab", "ba", 1)
        assert BOTTOM in game.universe("A")
        assert BOTTOM in game.universe("B")

    def test_moves_cover_both_sides(self):
        game = arena("a", "b", 1)
        moves = list(game.moves())
        sides = {m.side for m in moves}
        assert sides == {"A", "B"}

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            arena("a", "b", -1)

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GameArena(
                word_structure("a", "a"), word_structure("b", "ab"), 1
            )

    def test_opposite(self):
        game = arena("a", "b", 1)
        assert game.opposite("A") == "B"
        assert game.opposite("B") == "A"


class TestPlay:
    def test_record_and_tuples(self):
        game = arena("aa", "aa", 2)
        play = Play(game)
        play.record(Move("A", "a"), "a")
        play.record(Move("B", "aa"), "aa")
        tuple_a, tuple_b = play.tuples()
        assert tuple_a == ("a", "aa")
        assert tuple_b == ("a", "aa")
        assert len(play) == 2

    def test_sides_are_normalised(self):
        game = arena("aa", "aa", 1)
        play = Play(game)
        play.record(Move("B", "aa"), "a")
        tuple_a, tuple_b = play.tuples()
        assert tuple_a == ("a",)   # Duplicator's element landed on side A
        assert tuple_b == ("aa",)  # Spoiler's element on side B

    def test_illegal_spoiler_move(self):
        game = arena("aa", "aa", 1)
        play = Play(game)
        with pytest.raises(ValueError):
            play.record(Move("A", "b"), "a")

    def test_illegal_duplicator_response(self):
        game = arena("aa", "ab", 1)
        play = Play(game)
        with pytest.raises(ValueError):
            play.record(Move("A", "a"), "bb")

    def test_win_check_includes_constants(self):
        # On a^2 vs a^1, pairing (aa, a) violates the constant condition
        # (a is the constant 'a' on the B side, aa is not on the A side).
        game = arena("aa", "a", 1, alphabet="a")
        play = Play(game)
        play.record(Move("A", "aa"), "a")
        assert not play.duplicator_won()
        assert play.violation() is not None

    def test_winning_identity_play(self):
        game = arena("aba", "aba", 2)
        play = Play(game)
        play.record(Move("A", "ab"), "ab")
        play.record(Move("B", "ba"), "ba")
        assert play.duplicator_won()
