"""Games over restricted structures — the Appendix C setup of Lemma 4.4.

The Pseudo-Congruence proof plays its look-up games on restrictions
``𝔄_{w₁w₂}|_{Facs(w₁)}``; Appendix C's definition makes such restrictions
isomorphic to the plain structure ``𝔄_{w₁}``.  These tests machine-check
that isomorphism at the game level: the exact solver returns identical
verdicts on the restriction and on the small structure.
"""

import pytest

from repro.ef.game import GameArena, Move, Play
from repro.ef.solver import GameSolver
from repro.fc.structures import word_structure
from repro.words.factors import factors


def restriction_of(combined: str, part: str, alphabet: str = "ab"):
    return word_structure(combined, alphabet).restrict(factors(part))


class TestRestrictionIsomorphism:
    @pytest.mark.parametrize(
        "w1,w2",
        [("ab", "ba"), ("aab", "bb"), ("a", "bab")],
    )
    def test_same_universe_and_constants(self, w1, w2):
        restricted = restriction_of(w1 + w2, w1)
        small = word_structure(w1, "ab")
        assert restricted.universe_factors == small.universe_factors
        assert restricted.constants_vector() == small.constants_vector()

    @pytest.mark.parametrize(
        "w1,w2,v1,k",
        [
            ("ab", "ba", "ab", 2),
            ("aab", "bb", "aab", 2),
            ("a" * 3, "b", "a" * 4, 1),
        ],
    )
    def test_solver_verdicts_match(self, w1, w2, v1, k):
        """≡_k between restriction-of-concatenation and a plain structure
        equals ≡_k between the plain small structures."""
        restricted = restriction_of(w1 + w2, w1)
        small = word_structure(w1, "ab")
        other = word_structure(v1, "ab")
        via_restriction = GameSolver(restricted, other).duplicator_wins(k)
        via_plain = GameSolver(small, other).duplicator_wins(k)
        assert via_restriction == via_plain

    def test_restriction_blocks_cross_boundary_factors(self):
        # "ba" is a factor of "ab"+"ba" = "abba"? abba has factors
        # a, b, ab, bb, ba... "ba" IS a factor of abba (positions 2-3).
        # But Facs("ab") excludes it, so a game on the restriction must
        # not offer it as a move.
        restricted = restriction_of("abba", "ab")
        assert not restricted.contains("ba")
        assert restricted.contains("ab")

    def test_play_on_restriction(self):
        restricted = restriction_of("abba", "ab")
        small = word_structure("ab", "ab")
        arena = GameArena(restricted, small, 1)
        play = Play(arena)
        play.record(Move("A", "ab"), "ab")
        assert play.duplicator_won()

    def test_illegal_move_on_restriction_rejected(self):
        restricted = restriction_of("abba", "ab")
        small = word_structure("ab", "ab")
        arena = GameArena(restricted, small, 1)
        play = Play(arena)
        with pytest.raises(ValueError):
            play.record(Move("A", "bb"), "ab")
