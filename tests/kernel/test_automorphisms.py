"""Automorphism enumeration: rigidity of full structures, exactness of
the groups it does find, and the identity fallback on oversized inputs."""

import pytest

from repro.kernel.automorphisms import automorphism_group
from repro.kernel.interning import intern_restricted_table, intern_table
from repro.words.factors import factors


def _is_automorphism(table, perm) -> bool:
    """Check that ``perm`` fixes ⊥ and constants and preserves R∘ both ways."""
    n = table.n_factors
    if perm[0] != 0:
        return False
    if any(perm[c] != c for c in table.const_ids):
        return False
    for i in range(n + 1):
        for j in range(n + 1):
            image = table.cat[i][j]
            mapped = table.cat[perm[i]][perm[j]]
            if (image == -1) != (mapped == -1):
                return False
            if image != -1 and mapped != perm[image]:
                return False
    return True


@pytest.mark.parametrize("word", ["", "a", "ab", "abba", "aabab"])
def test_full_word_structures_are_rigid(word):
    # ε and the letter constants pin every factor by concat induction, so
    # symmetry reduction must be a no-op on plain word structures.
    table = intern_table(word, ("a", "b"))
    group = automorphism_group(table)
    assert group == (tuple(range(table.n_factors + 1)),)


def test_sparse_restriction_has_a_swap_automorphism():
    # Restricting a^10 to {aa, aaa} leaves no constants (ε and a collapse
    # to ⊥) and an empty R∘, so swapping the two factors is an
    # automorphism — this is the shape that arises in the pseudo-
    # congruence lookup games.
    word = "a" * 10
    table = intern_restricted_table(word, ("a", "b"), frozenset({"aa", "aaa"}))
    group = automorphism_group(table)
    assert len(group) == 2
    identity = tuple(range(table.n_factors + 1))
    assert group[0] == identity  # identity sorts first
    swap = group[1]
    assert swap != identity
    assert all(_is_automorphism(table, perm) for perm in group)


def test_constants_pin_otherwise_symmetric_elements():
    # {a, b} in "ab" also has an empty R∘ (ab is excluded), but the letter
    # constants distinguish the two elements, so the group is trivial.
    table = intern_restricted_table("ab", ("a", "b"), frozenset({"a", "b"}))
    assert automorphism_group(table) == (tuple(range(table.n_factors + 1)),)


def test_every_reported_permutation_is_verified_sound():
    # A restriction with some surviving R∘ structure: the group must only
    # contain maps preserving it exactly.
    word = "a" * 12
    allowed = frozenset({"a", "aa", "aaaa", "aaaaa"})
    table = intern_restricted_table(word, ("a", "b"), allowed)
    group = automorphism_group(table)
    assert all(_is_automorphism(table, perm) for perm in group)


def test_oversized_universe_falls_back_to_identity():
    # De Bruijn-style word: > 80 distinct factors trips the enumeration
    # cap, and the documented fallback is the (always sound) trivial group.
    word = "aaaabaabbababbbbaaa"
    assert len(factors(word)) > 80
    table = intern_table(word, ("a", "b"))
    assert automorphism_group(table) == (tuple(range(table.n_factors + 1)),)
