"""Unit tests for the dense bitset primitive (``repro.kernel.bitset``).

Masks are plain Python ints over the interned gid space; the invariants
the sweep layer leans on are: ``from_ids``/``iter_ids`` round-trip,
``iter_ids`` ascends, and the usual set-algebra identities hold under
``| & ^``.
"""

import random

from repro.kernel import bitset

SEED = 20260809


def test_empty_mask():
    assert bitset.EMPTY == 0
    assert bitset.count(bitset.EMPTY) == 0
    assert list(bitset.iter_ids(bitset.EMPTY)) == []
    assert not bitset.contains(bitset.EMPTY, 0)


def test_from_ids_round_trip_sorted():
    ids = [7, 0, 63, 64, 65, 3, 1000]
    mask = bitset.from_ids(ids)
    assert list(bitset.iter_ids(mask)) == sorted(ids)
    assert bitset.count(mask) == len(ids)
    for gid in ids:
        assert bitset.contains(mask, gid)
    for gid in (2, 62, 66, 999, 1001):
        assert not bitset.contains(mask, gid)


def test_duplicates_collapse():
    mask = bitset.from_ids([5, 5, 5, 9])
    assert bitset.count(mask) == 2
    assert list(bitset.iter_ids(mask)) == [5, 9]


def test_set_algebra_matches_frozenset():
    rng = random.Random(SEED)
    for _ in range(50):
        a = frozenset(rng.randrange(300) for _ in range(rng.randrange(40)))
        b = frozenset(rng.randrange(300) for _ in range(rng.randrange(40)))
        ma, mb = bitset.from_ids(a), bitset.from_ids(b)
        assert list(bitset.iter_ids(ma | mb)) == sorted(a | b)
        assert list(bitset.iter_ids(ma & mb)) == sorted(a & b)
        assert list(bitset.iter_ids(ma & ~mb)) == sorted(a - b)
        assert bitset.count(ma) == len(a)


def test_iter_ids_is_ascending_and_consumes_once():
    mask = bitset.from_ids(range(0, 200, 7))
    seen = list(bitset.iter_ids(mask))
    assert seen == sorted(seen)
    # iter_ids must not mutate the caller's mask (ints are immutable,
    # but guard the contract anyway: a second pass sees the same ids).
    assert list(bitset.iter_ids(mask)) == seen
