"""Unit tests for the sweep-family intern layer (repro.kernel.sweep).

The load-bearing invariant: a table built by prefix extension along the
enumeration tree must equal from-scratch interning of ``factors(word)``
— same member set, same deterministic (len, text) universe order — for
every word of enumerated grids, regardless of the order tables are
requested in.
"""

import random

from repro.kernel import stats
from repro.kernel.sweep import SweepFamily
from repro.words.factors import factors
from repro.words.generators import words_up_to

SEED = 20260806


def _check_table(family, word):
    table = family.table(word)
    expected = sorted(factors(word), key=lambda f: (len(f), f))
    universe_texts = [family.strings[gid] for gid in table.universe]
    assert universe_texts == expected, word
    assert table.members == frozenset(table.universe)
    assert table.word == word
    assert family.strings[table.gid] == word


def test_prefix_extension_equals_from_scratch_ab_grid():
    family = SweepFamily(("a", "b"))
    for word in words_up_to("ab", 6):
        _check_table(family, word)


def test_prefix_extension_equals_from_scratch_abc_grid():
    family = SweepFamily(("a", "b", "c"))
    for word in words_up_to("abc", 4):
        _check_table(family, word)


def test_out_of_order_requests_share_prefix_tables():
    # Requesting a long word first must still leave every later prefix
    # request correct (tables for all intermediate prefixes are created
    # on the way up).
    family = SweepFamily(("a", "b"))
    _check_table(family, "abbab")
    before = stats.snapshot()
    _check_table(family, "abb")  # already built as a prefix
    assert stats.diff(before, stats.snapshot()) == {}


def test_random_long_words_match_factors():
    rng = random.Random(SEED)
    family = SweepFamily(("a", "b"))
    for _ in range(25):
        word = "".join(rng.choice("ab") for _ in range(rng.randint(7, 12)))
        _check_table(family, word)


def test_ids_are_shared_across_words():
    family = SweepFamily(("a", "b"))
    table_a = family.table("abab")
    table_b = family.table("bab")
    gid = family.intern("ab")
    assert gid in table_a.members
    assert gid in table_b.members
    # One global id per string, ever.
    assert family.intern("ab") == gid


def test_cat_is_total_and_consistent_with_intern():
    family = SweepFamily(("a", "b"))
    left = family.intern("ab")
    right = family.intern("ba")
    assert family.cat(left, right) == family.intern("abba")
    assert family.cat(family.epsilon_id, left) == left
    assert family.cat(left, family.epsilon_id) == left
    # Results need not be factors of any enumerated word.
    assert family.cat(right, right) == family.intern("baba")


def test_sort_key_orders_like_intern_table():
    family = SweepFamily(("a", "b"))
    table = family.table("abba")
    keys = [family.sort_key(gid) for gid in table.universe]
    assert keys == sorted(keys)


def test_effort_counters_flow_through_kernel_stats():
    before = stats.snapshot()
    family = SweepFamily(("a", "b"))
    family.table("ab")
    delta = stats.diff(before, stats.snapshot())
    # ε root rebuilt once, then two letter extensions.
    assert delta["sweep_tables_rebuilt"] == 1
    assert delta["sweep_tables_extended"] == 2
    assert delta["sweep_words_interned"] == 3
