"""Differential check: CompiledEvaluator vs the naive FC evaluator.

``evaluate_naive`` is the executable transcription of the Section 2
satisfaction relation; the projection-cached evaluator must agree with it
on every formula/word/assignment triple.  Sentences come from the same
enumeration pools the experiments use, so the grid covers exactly the
formula shapes the engine evaluates in anger.
"""

import random

import pytest

from repro.fc.compiled import compiled_evaluator, evaluate_compiled
from repro.fc.enumeration import sentence_pool
from repro.fc.semantics import evaluate_naive, satisfying_assignments
from repro.fc.structures import word_structure
from repro.fc.syntax import And, Concat, Const, Exists, Forall, Not, Var
from repro.fcreg.constraints import in_regex
from repro.words.factors import factors
from repro.words.generators import words_up_to

ALPHABET = "ab"
SEED = 20260806

X = Var("x")
Y = Var("y")
Z = Var("z")


def test_rank1_pool_agrees_on_all_words_up_to_6():
    sentences = list(sentence_pool(1, ALPHABET, max_atoms=1))
    for word in words_up_to(ALPHABET, 6):
        structure = word_structure(word, ALPHABET)
        for sentence in sentences:
            fast = evaluate_compiled(structure, sentence, {})
            slow = evaluate_naive(structure, sentence, {})
            assert fast == slow, (word, sentence)


def test_rank2_pool_sample_agrees_on_words_up_to_4():
    rng = random.Random(SEED)
    sentences = rng.sample(list(sentence_pool(2, ALPHABET, max_atoms=2)), 150)
    for word in words_up_to(ALPHABET, 4):
        structure = word_structure(word, ALPHABET)
        for sentence in sentences:
            fast = evaluate_compiled(structure, sentence, {})
            slow = evaluate_naive(structure, sentence, {})
            assert fast == slow, (word, sentence)


#: Open formulas whose satisfying-assignment sets are compared in full.
OPEN_FORMULAS = [
    Exists(Y, Concat(X, Y, Y)),  # x is a square
    And(Concat(X, Y, Const("a")), Not(Concat(X, Const("a"), Y))),
    Forall(Y, Not(Concat(Y, X, X))),  # x·x is not a factor
    Exists(Y, Exists(Z, And(Concat(X, Y, Z), Concat(X, Z, Y)))),
]


@pytest.mark.parametrize("formula", OPEN_FORMULAS)
@pytest.mark.parametrize("word", ["", "ab", "aabba", "ababab"])
def test_open_formulas_agree_pointwise_and_setwise(word, formula):
    structure = word_structure(word, ALPHABET)
    universe = sorted(factors(word), key=lambda f: (len(f), f))
    variables = sorted(
        {X, Y, Z} & set(_free(formula)), key=lambda v: v.name
    )
    expected = set()

    def sweep(index, assignment):
        if index == len(variables):
            fast = evaluate_compiled(structure, formula, dict(assignment))
            slow = evaluate_naive(structure, formula, dict(assignment))
            assert fast == slow, (word, formula, assignment)
            if slow:
                expected.add(frozenset(assignment.items()))
            return
        for factor in universe:
            assignment[variables[index]] = factor
            sweep(index + 1, assignment)
        del assignment[variables[index]]

    sweep(0, {})
    produced = {
        frozenset(a.items())
        for a in satisfying_assignments(word, formula, ALPHABET)
    }
    assert produced == expected


def _free(formula):
    from repro.fc.syntax import free_variables

    return free_variables(formula)


def test_assignment_dict_is_never_mutated():
    structure = word_structure("abab", ALPHABET)
    assignment = {X: "ab"}
    evaluate_compiled(structure, Exists(Y, Concat(Y, X, X)), assignment)
    assert assignment == {X: "ab"}


def test_quantifier_shadowing_restores_outer_binding():
    # ∃x.(x ≐ ε·ε) rebinds x; the outer x ↦ "ab" must be back in force for
    # the right conjunct.
    structure = word_structure("ab", ALPHABET)
    formula = And(
        Exists(X, Concat(X, Const(""), Const(""))),
        Concat(X, Const("a"), Const("b")),
    )
    for _ in range(2):  # second pass exercises the warm projection cache
        assert evaluate_compiled(structure, formula, {X: "ab"}) is True
        assert evaluate_naive(structure, formula, {X: "ab"}) is True


def test_extension_atoms_evaluate_and_bypass_the_cache():
    # FC[REG] atoms go through the opaque _evaluate hook: results must
    # match the naive path and must not be projection-cached (their
    # purity is unknown).
    structure = word_structure("aabab", ALPHABET)
    constraint = Exists(X, And(in_regex(X, "a(a|b)*"), Concat(X, Y, Y)))
    evaluator = compiled_evaluator(word_structure("aabab", ALPHABET))
    cache_before = len(evaluator._cache)
    for value in sorted(factors("aabab")):
        fast = evaluate_compiled(structure, constraint, {Y: value})
        slow = evaluate_naive(structure, constraint, {Y: value})
        assert fast == slow, value
    assert id(constraint) not in evaluator._cache
    assert len(evaluator._cache) >= cache_before  # pure siblings may cache


def test_projection_cache_is_shared_across_outer_bindings():
    # The inner sentence ∃y.(y ≐ y·y ... ) has no free variables, so under
    # an outer enumeration it must be computed once and then served from
    # the projection cache.
    word = "abba"
    structure = word_structure(word, ALPHABET)
    inner = Exists(Y, And(Concat(Y, Y, Y), Not(Concat(Y, Const(""), Const("")))))
    formula = Exists(X, And(Concat(X, X, Const("")), inner))
    evaluator = compiled_evaluator(structure)
    evaluate_compiled(structure, formula, {})
    projections = evaluator._cache[id(inner)]
    assert projections[()] == evaluate_naive(structure, inner, {})
