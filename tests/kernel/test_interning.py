"""InternTable invariants, checked against the string-level structures."""

import pytest

from repro.fc.structures import BOTTOM, word_structure
from repro.kernel.interning import (
    BOTTOM_ID,
    intern_restricted_table,
    intern_table,
)
from repro.words.factors import factors


WORDS = ["", "a", "ab", "abba", "aabab", "bbbbbb"]


@pytest.mark.parametrize("word", WORDS)
def test_ids_follow_the_naive_enumeration_order(word):
    table = intern_table(word, ("a", "b"))
    ordered = sorted(factors(word), key=lambda f: (len(f), f))
    assert table.elements == (None, *ordered)
    assert table.n_factors == len(ordered)
    assert table.id_of == {f: i for i, f in enumerate(ordered, start=1)}
    assert table.lengths == (0, *(len(f) for f in ordered))


@pytest.mark.parametrize("word", WORDS)
def test_cat_matches_concat_holds(word):
    structure = word_structure(word, "ab")
    table = intern_table(word, ("a", "b"))
    elements = table.elements
    n = table.n_factors
    for i in range(n + 1):
        for j in range(n + 1):
            value = table.cat[i][j]
            if i == 0 or j == 0:
                assert value == -1  # ⊥ never participates in R∘
                continue
            joined = elements[i] + elements[j]
            if joined in table.id_of:
                assert value == table.id_of[joined]
                assert structure.concat_holds(joined, elements[i], elements[j])
            else:
                assert value == -1


def test_cat_never_yields_bottom():
    table = intern_table("abab", ("a", "b"))
    assert all(BOTTOM_ID not in row for row in table.cat)


@pytest.mark.parametrize("word", WORDS)
def test_const_ids_mirror_constants_vector(word):
    structure = word_structure(word, "ab")
    table = intern_table(word, ("a", "b"))
    for const_id, value in zip(table.const_ids, structure.constants_vector()):
        if value is BOTTOM:
            assert const_id == BOTTOM_ID
        else:
            assert table.elements[const_id] == value


def test_restricted_table_respects_sub_universe():
    structure = word_structure("abba", "ab")
    allowed = frozenset({"", "a", "ab"})
    restricted = structure.restrict(allowed)
    table = intern_restricted_table("abba", ("a", "b"), allowed)
    assert set(table.id_of) == allowed
    # "b" is a factor of the word but outside the sub-universe, so the
    # letter constant b collapses to ⊥ — same as the structure's view.
    assert restricted.constant("b") is BOTTOM
    assert table.const_ids[1] == BOTTOM_ID
    # ab = a·b is not in R∘ of the restriction (b missing), and the cat
    # table cannot even express it; a·a = aa is simply absent.
    assert table.cat[table.id_of["a"]][table.id_of["a"]] == -1


def test_id_for_roundtrip_and_foreignness():
    table = intern_table("ab", ("a", "b"))
    assert table.id_for(None) == BOTTOM_ID
    for factor in ("", "a", "b", "ab"):
        assert table.elements[table.id_for(factor)] == factor
    with pytest.raises(KeyError):
        table.id_for("ba")


def test_tables_are_shared_by_identity():
    assert intern_table("abba", ("a", "b")) is intern_table("abba", ("a", "b"))
