"""Differential check: kernel GameSolver vs the naive reference solver.

The kernel facade must be *bit-for-bit* compatible with the pre-kernel
implementation (preserved verbatim as :class:`NaiveGameSolver`): same
win/lose verdicts, same strategy elements, same move objects.  Exact
agreement (not just verdict agreement) matters because the formula
synthesiser consumes the strategy hooks and must stay deterministic
across the swap.
"""

import random

import pytest

from repro.ef.game import Move
from repro.ef.naive import NaiveGameSolver
from repro.ef.solver import GameSolver, solve_equivalence
from repro.fc.structures import BOTTOM, word_structure
from repro.words.factors import factors
from repro.words.generators import words_up_to

ALPHABET = "ab"
WORDS4 = list(words_up_to(ALPHABET, 4))
SEED = 20260806


def _pair(word_a, word_b):
    return (
        word_structure(word_a, ALPHABET),
        word_structure(word_b, ALPHABET),
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_full_grid_up_to_length_4(k):
    # Every unordered pair of words of length ≤ 4 — the self-pairs pin the
    # reflexive case, the rest sweep all small win/lose frontiers.
    for i, word_a in enumerate(WORDS4):
        for word_b in WORDS4[i:]:
            structure_a, structure_b = _pair(word_a, word_b)
            fast = GameSolver(structure_a, structure_b).duplicator_wins(k)
            slow = solve_equivalence(structure_a, structure_b, k)
            assert fast == slow, (word_a, word_b, k)


def test_seeded_sample_at_lengths_5_and_6():
    # The full ≤6 grid takes ~1 minute with the naive oracle; a fixed
    # seeded sample keeps the long-word regime covered in CI time.
    rng = random.Random(SEED)
    long_words = [w for w in words_up_to(ALPHABET, 6) if len(w) >= 5]
    for _ in range(20):
        word_a = rng.choice(long_words)
        word_b = rng.choice(long_words)
        structure_a, structure_b = _pair(word_a, word_b)
        fast = GameSolver(structure_a, structure_b)
        for k in (1, 2, 3):
            slow = solve_equivalence(structure_a, structure_b, k)
            assert fast.duplicator_wins(k) == slow, (word_a, word_b, k)


def _sampled_positions(rng, structure_a, structure_b, count):
    universe_a = [BOTTOM, *sorted(structure_a.universe_factors)]
    universe_b = [BOTTOM, *sorted(structure_b.universe_factors)]
    for _ in range(count):
        size = rng.randrange(0, 3)
        yield frozenset(
            (rng.choice(universe_a), rng.choice(universe_b))
            for _ in range(size)
        )


def test_midgame_positions_agree_exactly():
    # consistent / duplicator_wins / winning_response / spoiler_winning_move
    # on random (possibly inconsistent) positions: the kernel must return
    # the *same elements*, not merely equally-winning ones.
    rng = random.Random(SEED)
    pairs = [("abab", "abba"), ("aab", "aabb"), ("ba", "baa"), ("", "a")]
    for word_a, word_b in pairs:
        structure_a, structure_b = _pair(word_a, word_b)
        fast = GameSolver(structure_a, structure_b)
        slow = NaiveGameSolver(structure_a, structure_b)
        for position in _sampled_positions(rng, structure_a, structure_b, 12):
            assert fast.consistent(position) == slow.consistent(position)
            for k in (1, 2):
                assert fast.duplicator_wins(k, position) == slow.duplicator_wins(
                    k, position
                ), (word_a, word_b, position, k)
                assert fast.spoiler_winning_move(
                    k, position
                ) == slow.spoiler_winning_move(k, position)
                assert fast.spoiler_winning_move(
                    k, position, skip_bottom=True
                ) == slow.spoiler_winning_move(k, position, skip_bottom=True)
            if not slow.consistent(position):
                continue
            move = Move("A", rng.choice([BOTTOM, *sorted(factors(word_a))]))
            assert fast.winning_response(2, position, move) == (
                slow.winning_response(2, position, move)
            ), (word_a, word_b, position, move)


def test_merged_response_order_matches_keyed_sort():
    # The O(n) two-run merge must reproduce the naive stable sort key
    # (mirror first, ⊥-status, length distance, ascending-id ties) for
    # every move element, mirror present or absent.
    for word_a, word_b in [("abab", "abba"), ("aab", "bbbaa"), ("", "ab")]:
        structure_a, structure_b = _pair(word_a, word_b)
        core = GameSolver(structure_a, structure_b)._core
        for side, count, mirror_map, own, lengths in (
            (
                "A",
                core._n_b + 1,
                core._mirror_ab,
                core.table_a.lengths,
                core.table_b.lengths,
            ),
            (
                "B",
                core._n_a + 1,
                core._mirror_ba,
                core.table_b.lengths,
                core.table_a.lengths,
            ),
        ):
            for element in range(len(own)):
                mirror = mirror_map[element]
                expected = sorted(
                    range(count),
                    key=lambda d: (
                        d != mirror,
                        (d == 0) != (element == 0),
                        abs(lengths[d] - own[element]),
                    ),
                )
                assert list(core._responses(side, element)) == expected, (
                    word_a,
                    word_b,
                    side,
                    element,
                )


def test_winning_response_requires_a_round():
    structure_a, structure_b = _pair("ab", "ba")
    solver = GameSolver(structure_a, structure_b)
    with pytest.raises(ValueError):
        solver.winning_response(0, frozenset(), Move("A", "a"))


def test_restricted_structures_agree():
    # The E08-style pseudo-congruence games play on restrictions; these are
    # also the only structures with nontrivial automorphism groups, so this
    # exercises the symmetry-reduced memo against the oracle.
    combos = [
        ("aabb", "ab", "aabbab"),
        ("abab", "bb", "ababbb"),
        ("aaa", "aa", "aaaaa"),
    ]
    for part_a, part_b, combined in combos:
        base = word_structure(combined, ALPHABET)
        structure_a = base.restrict(factors(part_a))
        structure_b = base.restrict(factors(part_b))
        fast = GameSolver(structure_a, structure_b)
        slow = NaiveGameSolver(structure_a, structure_b)
        for k in (1, 2, 3):
            assert fast.duplicator_wins(k) == slow.duplicator_wins(k), (
                part_a,
                part_b,
                k,
            )


def test_solver_stats_shape():
    structure_a, structure_b = _pair("aabba", "abbaa")
    solver = GameSolver(structure_a, structure_b)
    solver.duplicator_wins(2)
    stats = solver.solver_stats()
    assert stats["positions_explored"] > 0
    assert stats["consistency_checks"] > 0
    assert stats["memo_size"] == solver.memo_size()
    assert stats["universe_a"] == len(factors("aabba")) + 1  # + ⊥
