"""Lost-update and fork-rearm regressions for the stats counter locks.

``_COUNTERS[name] += amount`` is a read-modify-write: before the module
locks landed, T threads × N increments reliably dropped updates under
free-threading pressure.  These tests pin the conservation law exactly
(delta == T * N) and the per-pid lock re-arm that keeps a forked engine
worker from inheriting a held lock.
"""

import threading

from repro.kernel import stats as kernel_stats
from repro.store import stats as store_stats

N_THREADS = 8
N_INCREMENTS = 2000


def hammer(record, name: str) -> None:
    barrier = threading.Barrier(N_THREADS)

    def work() -> None:
        barrier.wait()  # maximise interleaving: everyone starts at once
        for _ in range(N_INCREMENTS):
            record(name)

    threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)


def test_kernel_counter_increments_are_conserved():
    before = kernel_stats.snapshot()["table_hits"]
    hammer(kernel_stats.record, "table_hits")
    after = kernel_stats.snapshot()["table_hits"]
    assert after - before == N_THREADS * N_INCREMENTS


def test_store_counter_increments_are_conserved():
    before = store_stats.snapshot()["store_hits"]
    hammer(store_stats.record, "store_hits")
    after = store_stats.snapshot()["store_hits"]
    assert after - before == N_THREADS * N_INCREMENTS


def test_lock_is_rearmed_after_fork(monkeypatch):
    # Simulate the child side of a fork by shifting the observed pid:
    # _lock() must hand back a *fresh* lock (the inherited one may be
    # held by a parent thread that no longer exists in the child).
    for stats in (kernel_stats, store_stats):
        inherited = stats._lock()
        monkeypatch.setattr(stats.os, "getpid", lambda: -1)
        fresh = stats._lock()
        assert fresh is not inherited
        assert stats._lock() is fresh  # stable until the next fork
        monkeypatch.undo()
        # Back in the parent pid the module re-arms once more; counters
        # keep working either way.
        stats.record("table_hits" if stats is kernel_stats else "store_hits")
