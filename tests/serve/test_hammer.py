"""Threaded hammer: N client threads × M mixed queries against one daemon.

The daemon gives every connection its own handler thread, so this drives
real concurrency through the kernel solver, the compiled-FC projection
caches, and both stats modules.  Two properties are checked:

* every threaded response is bit-identical to the serial baseline (the
  query ops are pure functions of the request; shared caches must never
  leak a wrong answer across threads);
* the locked counter paths lose no increments and the daemon's own
  ``stats`` op agrees with an in-process snapshot once the hammer is
  quiescent.
"""

import json
import threading

import pytest

from repro.kernel import stats as kernel_stats
from repro.serve.client import ServeClient
from repro.serve.daemon import ReproServer
from repro.store import stats as store_stats
from repro.store.backends import MemoryBackend
from repro.store.core import ArtifactStore

N_THREADS = 6

#: Mixed workload spanning every pure query op.  Kept small enough that
#: the whole hammer (serial pass + N_THREADS threaded passes) stays in
#: the tier-1 budget, but wide enough to hit the EF kernel, the FC
#: evaluator, and the rank sweep concurrently.
WORKLOAD = [
    ("ping", {}),
    ("membership", {"word": "abab", "formula": "ww"}),
    ("membership", {"word": "abaab", "formula": "ww"}),
    ("membership", {"word": "aa", "formula": "ww"}),
    # Word pairs unique to this module: solver_for is an lru cache
    # shared across the whole pytest process, and a cold first solve is
    # what guarantees the counter-delta assertions below see real work.
    ("equiv", {"w": "abba", "v": "abab", "k": 2}),
    ("equiv", {"w": "aabb", "v": "abab", "k": 1}),
    ("equiv", {"w": "bb", "v": "bbb", "k": 1}),
    ("rank", {"w": "ab", "v": "abab", "max_k": 2}),
]


@pytest.fixture
def server():
    store = ArtifactStore(MemoryBackend())
    with ReproServer(("127.0.0.1", 0), store=store) as srv:
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            srv.shutdown()
            thread.join(timeout=10)


def run_workload(port: int, rotation: int) -> list:
    """One client, the full workload, starting ``rotation`` entries in.

    Rotating per thread staggers which ops collide at any instant, so
    the hammer exercises cross-op interleavings instead of N threads
    marching through identical queries in lockstep.
    """
    responses = [None] * len(WORKLOAD)
    with ServeClient(port=port) as client:
        for step in range(len(WORKLOAD)):
            index = (step + rotation) % len(WORKLOAD)
            op, params = WORKLOAD[index]
            responses[index] = client.call(op, **params)
    return responses


def test_threaded_responses_are_bit_identical_to_serial(server):
    kernel_before = kernel_stats.snapshot()
    store_before = store_stats.snapshot()

    with ServeClient(port=server.port) as client:
        baseline = [client.call(op, **params) for op, params in WORKLOAD]

    results = [None] * N_THREADS
    errors = []

    def hit(slot: int) -> None:
        try:
            results[slot] = run_workload(server.port, slot)
        except Exception as error:  # surfaced below; threads must not die
            errors.append(error)

    threads = [
        threading.Thread(target=hit, args=(slot,))
        for slot in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    assert all(result is not None for result in results)

    canonical = json.dumps(baseline, sort_keys=True)
    for result in results:
        assert json.dumps(result, sort_keys=True) == canonical

    # Counters stay monotone under contention (exact conservation is
    # pinned down in tests/kernel/test_stats_threading.py) and the cold
    # solves above left real solver and store traffic behind.
    kernel_delta = kernel_stats.diff(kernel_before, kernel_stats.snapshot())
    assert all(delta > 0 for delta in kernel_delta.values())
    assert kernel_delta.get("consistency_checks", 0) > 0
    store_delta = store_stats.diff(store_before, store_stats.snapshot())
    assert all(delta > 0 for delta in store_delta.values())
    assert (
        store_delta.get("store_hits", 0) + store_delta.get("store_misses", 0)
        > 0
    )


def test_quiescent_stats_op_agrees_with_process_snapshot(server):
    with ServeClient(port=server.port) as client:
        client.call("equiv", w="aa", v="aaa", k=1)
        reported = client.call("stats")
    # The daemon runs in this process; once no query is in flight its
    # reported counters are exactly the module snapshot, and its store
    # is the fixture's MemoryBackend.
    assert reported["counters"] == store_stats.snapshot()
    assert reported["store"] is not None
