"""Wire-schema tests: encode/decode and request validation."""

import pytest

from repro.serve.protocol import (
    OPS,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
    validate_request,
)


class TestCodec:
    def test_encode_is_one_newline_terminated_json_line(self):
        raw = encode({"op": "ping"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert decode_line(raw) == {"op": "ping"}

    def test_encode_is_deterministic(self):
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})

    def test_decode_accepts_str_and_bytes(self):
        assert decode_line('{"op": "ping"}') == {"op": "ping"}
        assert decode_line(b'{"op": "ping"}') == {"op": "ping"}

    @pytest.mark.parametrize(
        "line", [b"\xff\xfe", b"not json", b"[1, 2]", b'"just a string"']
    )
    def test_decode_rejects_garbage(self, line):
        with pytest.raises(ProtocolError):
            decode_line(line)


class TestValidation:
    def test_every_op_accepts_its_minimal_request(self):
        minimal = {
            "ping": {},
            "stats": {},
            "membership": {"word": "abab"},
            "equiv": {"w": "a", "v": "aa", "k": 1},
            "rank": {"w": "a", "v": "aa"},
            "spanner": {"pattern": "x{a*}", "document": "aa"},
            "shutdown": {},
        }
        assert set(minimal) == set(OPS)
        for op, args in minimal.items():
            assert validate_request({"op": op, **args})["op"] == op

    def test_unknown_op_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({})

    def test_missing_required_argument(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_request({"op": "equiv", "w": "a", "v": "aa"})

    def test_mistyped_argument(self):
        with pytest.raises(ProtocolError, match="must be int"):
            validate_request({"op": "equiv", "w": "a", "v": "aa", "k": "2"})
        # bool is an int subclass but never a valid rank.
        with pytest.raises(ProtocolError, match="must be int"):
            validate_request({"op": "equiv", "w": "a", "v": "aa", "k": True})

    def test_unexpected_argument(self):
        with pytest.raises(ProtocolError, match="unexpected"):
            validate_request({"op": "ping", "extra": 1})

    def test_optional_arguments_are_type_checked(self):
        with pytest.raises(ProtocolError, match="must be str"):
            validate_request(
                {"op": "membership", "word": "ab", "alphabet": 3}
            )


class TestEnvelopes:
    def test_ok_response(self):
        assert ok_response("ping", {"x": 1}) == {
            "ok": True,
            "op": "ping",
            "result": {"x": 1},
        }

    def test_error_response_with_and_without_op(self):
        assert error_response("boom") == {"ok": False, "error": "boom"}
        assert error_response("boom", "equiv") == {
            "ok": False,
            "error": "boom",
            "op": "equiv",
        }
