"""Query dispatch semantics, socket-free."""

import pytest

from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError, validate_request
from repro.serve.service import QueryService
from repro.store import runtime as store_runtime
from repro.store.backends import MemoryBackend
from repro.store.core import ArtifactStore


@pytest.fixture
def service():
    return QueryService()


def ask(service, **request):
    return service.dispatch(validate_request(request))


class TestPing:
    def test_reports_protocol_version(self, service):
        assert ask(service, op="ping") == {"protocol": PROTOCOL_VERSION}


class TestStats:
    def test_without_store(self, service):
        previous = store_runtime.activate(None)
        try:
            result = ask(service, op="stats")
        finally:
            store_runtime.deactivate(previous)
        assert result["store"] is None
        assert "store_hits" in result["counters"]

    def test_with_store(self, service):
        previous = store_runtime.activate(ArtifactStore(MemoryBackend()))
        try:
            result = ask(service, op="stats")
        finally:
            store_runtime.deactivate(previous)
        assert result["store"]["backend"] == "memory"


class TestMembership:
    def test_named_paper_formula(self, service):
        result = ask(service, op="membership", word="abab", formula="ww")
        assert result == {"word": "abab", "alphabet": "ab", "member": True}
        assert not ask(service, op="membership", word="aba", formula="ww")[
            "member"
        ]

    def test_text_formula(self, service):
        result = ask(
            service,
            op="membership",
            word="aa",
            text="E x: (x = a.a)",
            alphabet="ab",
        )
        assert result["member"] is True

    def test_requires_exactly_one_formula_source(self, service):
        with pytest.raises(ProtocolError, match="exactly one"):
            ask(service, op="membership", word="ab")
        with pytest.raises(ProtocolError, match="exactly one"):
            ask(
                service,
                op="membership",
                word="ab",
                formula="ww",
                text="E x: (x = a)",
            )

    def test_unknown_name_and_bad_text_surface_as_protocol_errors(
        self, service
    ):
        with pytest.raises(ProtocolError, match="unknown paper formula"):
            ask(service, op="membership", word="ab", formula="nope")
        with pytest.raises(ProtocolError, match="parse error"):
            ask(service, op="membership", word="ab", text="((")

    def test_open_formulas_are_rejected(self, service):
        with pytest.raises(ProtocolError, match="open"):
            ask(service, op="membership", word="ab", text="(x = a)")


class TestEquivAndRank:
    def test_equiv_verdicts(self, service):
        assert ask(service, op="equiv", w="aaa", v="aaaa", k=1)["equivalent"]
        assert not ask(service, op="equiv", w="a", v="aa", k=1)["equivalent"]

    def test_negative_rank_is_rejected(self, service):
        with pytest.raises(ProtocolError, match="≥ 0"):
            ask(service, op="equiv", w="a", v="a", k=-1)
        with pytest.raises(ProtocolError, match="≥ 0"):
            ask(service, op="rank", w="a", v="a", max_k=-1)

    def test_rank_finds_least_separating_k(self, service):
        result = ask(service, op="rank", w="aa", v="aaa", max_k=3)
        assert result["rank"] == 1

    def test_rank_none_when_equivalent_throughout(self, service):
        result = ask(service, op="rank", w="aaa", v="aaaa", max_k=1)
        assert result["rank"] is None


class TestSpanner:
    def test_extraction_rows_are_sorted_and_content_bearing(self, service):
        result = ask(
            service, op="spanner", pattern="a*x{a+}a*", document="aaa"
        )
        assert result["schema"] == ["x"]
        assert result["class"] == "regular"
        spans = [(row["x"]["start"], row["x"]["end"]) for row in result["rows"]]
        assert spans == sorted(spans)
        assert {row["x"]["content"] for row in result["rows"]} == {
            "a", "aa", "aaa",
        }

    def test_bad_pattern_is_a_protocol_error(self, service):
        with pytest.raises(ProtocolError, match="bad pattern"):
            ask(service, op="spanner", pattern="{x}", document="a")


class TestShutdown:
    def test_acknowledges(self, service):
        assert ask(service, op="shutdown") == {"stopping": True}
