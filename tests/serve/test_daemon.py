"""End-to-end daemon tests: real sockets, real threads, one process."""

import threading

import pytest

from repro.serve.client import ServeClient, ServeError, query
from repro.serve.daemon import ReproServer
from repro.store import runtime as store_runtime
from repro.store.backends import MemoryBackend
from repro.store.core import ArtifactStore


@pytest.fixture
def server():
    with ReproServer(("127.0.0.1", 0)) as srv:
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            srv.shutdown()
            thread.join(timeout=10)


class TestQueries:
    def test_ping_and_membership_over_one_connection(self, server):
        with ServeClient(port=server.port) as client:
            assert client.call("ping")["protocol"] == 1
            assert client.call("membership", word="abab", formula="ww")[
                "member"
            ]
            assert client.call("equiv", w="aaa", v="aaaa", k=1)["equivalent"]

    def test_one_shot_query_helper(self, server):
        result = query("rank", port=server.port, w="aa", v="aaa", max_k=3)
        assert result["rank"] == 1

    def test_error_envelope_keeps_the_connection_usable(self, server):
        with ServeClient(port=server.port) as client:
            response = client.request("membership", word="ab")
            assert response["ok"] is False
            assert "exactly one" in response["error"]
            with pytest.raises(ServeError):
                client.call("equiv", w="a", v="a", k=-1)
            # The daemon answered both errors without dropping us.
            assert client.call("ping")["protocol"] == 1

    def test_malformed_line_gets_an_error_response(self, server):
        with ServeClient(port=server.port) as client:
            client._sock.sendall(b"this is not json\n")
            line = client._file.readline()
            assert b'"ok": false' in line

    def test_concurrent_connections(self, server):
        results = []

        def hit() -> None:
            results.append(
                query("equiv", port=server.port, w="aaa", v="aaaa", k=1)
            )

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 4
        assert all(r["equivalent"] for r in results)


class TestLifecycle:
    def test_concurrent_shutdown_requests_race_cleanly(self):
        # Regression for the begin_shutdown check-then-set on _stopping:
        # without the lifecycle lock, concurrent shutdown requests all
        # passed the guard.  Every caller must return promptly (the loser
        # never waits on the winner's join) and the loop must stop once.
        srv = ReproServer(("127.0.0.1", 0))
        serving = threading.Thread(target=srv.serve_forever, daemon=True)
        serving.start()
        try:
            barrier = threading.Barrier(4)

            def stop() -> None:
                barrier.wait()
                srv.begin_shutdown()

            callers = [threading.Thread(target=stop) for _ in range(4)]
            for thread in callers:
                thread.start()
            for thread in callers:
                thread.join(timeout=10)
            assert not any(thread.is_alive() for thread in callers)
            serving.join(timeout=10)
            assert not serving.is_alive()
        finally:
            srv.server_close()

    def test_shutdown_request_stops_the_loop(self):
        srv = ReproServer(("127.0.0.1", 0))
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            result = query("shutdown", port=srv.port)
            assert result == {"stopping": True}
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            srv.server_close()

    def test_store_activation_is_scoped_to_the_server(self):
        sentinel = ArtifactStore(MemoryBackend())
        previous = store_runtime.activate(sentinel)
        try:
            store = ArtifactStore(MemoryBackend())
            srv = ReproServer(("127.0.0.1", 0), store=store)
            assert store_runtime.active() is store
            srv.server_close()
            assert store_runtime.active() is sentinel
        finally:
            store_runtime.deactivate(previous)
