"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_equiv(self, capsys):
        assert main(["equiv", "a" * 12, "a" * 14, "2"]) == 0
        assert "≡_2" in capsys.readouterr().out

    def test_inequiv(self, capsys):
        assert main(["equiv", "aaaa", "aaa", "2"]) == 0
        assert "≢_2" in capsys.readouterr().out

    def test_rank(self, capsys):
        assert main(["rank", "aaaa", "aaa"]) == 0
        assert "distinguishing rank: 2" in capsys.readouterr().out

    def test_rank_equivalent(self, capsys):
        assert main(["rank", "a" * 12, "a" * 14, "2"]) == 0
        assert "equivalent through rank 2" in capsys.readouterr().out

    def test_synth_success(self, capsys):
        assert main(["synth", "aaaa", "aaa", "2"]) == 0
        out = capsys.readouterr().out
        assert "qr(φ) = 2" in out
        assert "'aaaa' ⊨ φ: True" in out
        assert "'aaa' ⊨ φ: False" in out

    def test_synth_failure(self, capsys):
        assert main(["synth", "aaa", "aaaa", "1"]) == 1
        assert "no certificate" in capsys.readouterr().out

    def test_check(self, capsys):
        assert main(["check", "abab", "ww"]) == 0
        assert "True" in capsys.readouterr().out

    def test_check_unknown_formula(self):
        with pytest.raises(SystemExit):
            main(["check", "abab", "nonsense"])

    def test_pow2(self, capsys):
        assert main(["pow2", "1"]) == 0
        assert "a^3 ≡_1 a^4" in capsys.readouterr().out

    def test_report_runs(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 4.14" in out
        assert "Theorem 5.8" in out


class TestEvalCommand:
    def test_eval_sentence(self, capsys):
        assert main(["eval", "E x: (x = a.a)", "baa"]) == 0
        assert "True" in capsys.readouterr().out

    def test_eval_false(self, capsys):
        assert main(["eval", "E x: (x = a.a)", "bab"]) == 0
        assert "False" in capsys.readouterr().out

    def test_eval_parse_error(self, capsys):
        assert main(["eval", "(x = ", "ab"]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_eval_open_formula(self, capsys):
        assert main(["eval", "(x = a)", "ab"]) == 2
        assert "open" in capsys.readouterr().err

    def test_eval_explicit_alphabet(self, capsys):
        assert main(["eval", "E x: (x = b)", "aa", "ab"]) == 0
        assert "False" in capsys.readouterr().out


class TestCertifyCommand:
    def test_emit_and_verify(self, capsys, tmp_path):
        import json

        assert main(["certify"]) == 0
        emitted = capsys.readouterr().out
        bundle_path = tmp_path / "bundle.json"
        bundle_path.write_text(emitted, encoding="utf-8")
        assert main(["certify", str(bundle_path)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_tampered_bundle_fails(self, capsys, tmp_path):
        import json

        assert main(["certify"]) == 0
        bundle = json.loads(capsys.readouterr().out)
        bundle["language_witnesses"][0]["foil"] = bundle[
            "language_witnesses"
        ][0]["member"]
        bundle_path = tmp_path / "tampered.json"
        bundle_path.write_text(json.dumps(bundle), encoding="utf-8")
        assert main(["certify", str(bundle_path)]) == 1


class TestPaperFormulaRegistry:
    def test_main_choices_mirror_the_builders_registry(self):
        from repro.__main__ import PAPER_FORMULA_NAMES
        from repro.fc.builders import PAPER_FORMULAS

        assert list(PAPER_FORMULA_NAMES) == sorted(PAPER_FORMULAS)

    def test_every_named_formula_builds_closed(self):
        from repro.fc.builders import PAPER_FORMULAS, paper_formula
        from repro.fc.syntax import free_variables

        for name in PAPER_FORMULAS:
            phi, alphabet = paper_formula(name)
            assert not free_variables(phi), name
            assert alphabet

    def test_unknown_name_raises_with_choices(self):
        import pytest as _pytest

        from repro.fc.builders import paper_formula

        with _pytest.raises(KeyError, match="choose from"):
            paper_formula("nonsense")


class TestWarmCommand:
    def test_warm_populates_and_rewarm_hits(self, capsys, tmp_path):
        spec = f"sqlite:{tmp_path}/artifacts.sqlite"
        word = "aabbab" * 2
        assert main(["warm", "--store", spec, word, word[:-1] + "a"]) == 0
        first = capsys.readouterr().out
        assert "store(s)" in first
        assert " 0 hit(s)" in first

        from repro.ef.equivalence import solver_for
        from repro.kernel.automorphisms import automorphism_group
        from repro.kernel.interning import intern_table

        intern_table.cache_clear()
        automorphism_group.cache_clear()
        solver_for.cache_clear()
        assert main(["warm", "--store", spec, word, word[:-1] + "a"]) == 0
        second = capsys.readouterr().out
        assert " 0 miss(es)" in second
        assert " 0 store(s)" in second

    def test_warm_off_is_an_error(self, capsys):
        assert main(["warm", "--store", "off"]) == 2
        assert "no store" in capsys.readouterr().out
