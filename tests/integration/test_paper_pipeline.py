"""End-to-end integration: the paper's argument chains, executed whole.

Each test walks one complete inference chain of the paper across multiple
subsystems — words → games → logic → spanners — rather than any single
module.
"""

import pytest

from repro.core.inexpressibility import language_report, relation_report
from repro.core.pow2 import pow2_witness
from repro.core.witnesses import witness_family
from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.fc.builders import phi_vbv
from repro.fc.semantics import defines_language_member, models
from repro.fc.syntax import quantifier_rank
from repro.fcreg.rewriting import eliminate_bounded_constraints
from repro.words.generators import PAPER_LANGUAGES


class TestLemma35Chain:
    """Lemma 3.5: ≡_k witnesses in/out of L kill FC-definability —
    executed with the exact solver on the anbn family."""

    def test_anbn_chain(self):
        family = witness_family("anbn")
        oracle = PAPER_LANGUAGES["anbn"]
        for k in (0, 1):
            pair = family.pair(k)
            assert pair.member in oracle
            assert pair.foil not in oracle
            assert equiv_k(pair.member, pair.foil, k, "ab")


class TestProp37Chain:
    """≡_k is not a congruence: the u/u'/v/v' quadruple, with the
    distinguishing sentence model-checked and the parts' equivalences
    solver-checked."""

    def test_full_quadruple(self):
        p, q = pow2_witness(2).p, pow2_witness(2).q  # 12, 14
        u, v = "a" * p, "a" * q
        tail = "b" + "a" * p
        # Parts equivalent (at the solver-reachable rank 2):
        assert equiv_k(u, v, 2, "ab")
        assert equiv_k(tail, tail, 2, "ab")
        # ... but the concatenations are separated by the explicit rank-5
        # sentence φ_vbv:
        phi = phi_vbv()
        assert quantifier_rank(phi) == 5
        assert defines_language_member(u + tail, phi, "ab")
        assert not defines_language_member(v + tail, phi, "ab")

    def test_concatenations_distinguished_at_low_rank_already(self):
        # For these small instances the game solver separates the
        # concatenations within 3 rounds (consistent with ≢₅).
        rank = distinguishing_rank(
            "aa" + "b" + "aa", "aaa" + "b" + "aa", 3, "ab"
        )
        assert rank is not None


class TestTheorem58Chain:
    """Relation → ψ-reduction → non-FC language → bounded → spanners."""

    @pytest.mark.parametrize("name", ["Num_a", "Morph_h"])
    def test_relation_chain(self, name):
        relation = relation_report(name, max_length=6)
        assert relation.reduction_agrees
        language = language_report(
            relation.target_language, ranks=(0, 1), verify_equivalence_up_to=1
        )
        assert language.verdict == "confirmed"
        assert all(language.equivalences.values())


class TestLemma54Chain:
    """FC[REG] sentence with bounded constraints ⇒ equivalent FC sentence
    ⇒ the same ≡_k witnesses apply."""

    def test_rewritten_sentence_respects_witnesses(self):
        from repro.fc.builders import phi_whole_word
        from repro.fc.syntax import And, Exists, Var
        from repro.fcreg.constraints import in_regex

        u = Var("u")
        # ψ: the whole word lies in a*b* — FC[REG] with a bounded constraint.
        psi = Exists(u, And(phi_whole_word(u), in_regex(u, "a*b*")))
        phi = eliminate_bounded_constraints(psi)
        pair = witness_family("anbn").pair(1)
        # Both members of the ≡₁ witness pair lie in a*b*, so the bounded
        # sentence cannot separate them — and indeed:
        assert models(pair.member, phi, "ab")
        assert models(pair.foil, phi, "ab")
        assert equiv_k(pair.member, pair.foil, 1, "ab")


class TestSpannerBridge:
    """Generalized-core-spanner side of the story on real documents."""

    def test_core_spanner_cannot_count_but_zeta_r_can(self):
        from repro.core.relations import num_a
        from repro.spanners.selectable import selection_gap_language
        from repro.spanners.spanner import extract

        base = extract("x{a*}y{(ba)*}")
        gap = selection_gap_language(base, ("x", "y"), num_a, "ab", 5)
        oracle = PAPER_LANGUAGES["L1"]
        for word in gap:
            assert word in oracle
