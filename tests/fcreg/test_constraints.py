"""Tests for FC[REG] regular-constraint atoms."""

import pytest
from hypothesis import given, strategies as st

from repro.fc.semantics import models, satisfying_assignments
from repro.fc.syntax import And, Const, Exists, Var, quantifier_rank
from repro.fcreg.constraints import (
    RegularConstraint,
    in_regex,
    regular_constraints_of,
)

x, y = Var("x"), Var("y")


class TestSemantics:
    def test_basic_membership(self):
        phi = in_regex(x, "(ba)*")
        results = {s[x] for s in satisfying_assignments("ababa", phi, "ab")}
        assert results == {"", "ba", "baba"}

    def test_factor_requirement(self):
        # σ(x) must be a factor of w AND in L(γ): bb ∈ L(b*) but bb ⋢ ab.
        phi = in_regex(x, "b*")
        results = {s[x] for s in satisfying_assignments("ab", phi, "ab")}
        assert results == {"", "b"}

    def test_constant_subject(self):
        phi = in_regex("a", "a*")
        assert models("ab", phi, "ab")
        phi_neg = in_regex("b", "a*")
        assert not models("ab", phi_neg, "ab")

    def test_absent_constant_subject_is_false(self):
        phi = in_regex("b", "(a|b)*")
        assert not models("aa", phi, "ab")  # b^𝔄 = ⊥

    def test_rank_zero(self):
        assert quantifier_rank(in_regex(x, "a*")) == 0
        assert quantifier_rank(Exists(x, in_regex(x, "a*"))) == 1

    def test_combines_with_fc(self):
        from repro.fc.builders import phi_whole_word

        u = Var("u")
        phi = Exists(u, And(phi_whole_word(u), in_regex(u, "a*b*")))
        assert models("aabb", phi, "ab")
        assert not models("aba", phi, "ab")


class TestOptimizerHook:
    def test_candidates_filter_universe(self):
        from repro.fc.optimizer import formula_pool
        from repro.fc.structures import word_structure

        structure = word_structure("abab", "ab")
        constraint = in_regex(x, "(ab)*")
        pool = formula_pool(structure, {}, x, constraint, True)
        assert pool == {"", "ab", "abab"}

    def test_exists_with_constraint_is_fast_and_correct(self):
        phi = Exists(x, in_regex(x, "(ba)+"))
        assert models("aba", phi, "ab")
        assert not models("aab"[:2], phi, "ab")


class TestUtilities:
    def test_collector(self):
        phi = Exists(x, And(in_regex(x, "a*"), in_regex(x, "b*")))
        assert len(regular_constraints_of(phi)) == 2

    def test_substitution(self):
        constraint = in_regex(x, "a*")
        replaced = constraint._substitute({x: y})
        assert replaced.x == y

    def test_long_subject_rejected(self):
        with pytest.raises(ValueError):
            in_regex("ab", "a*")

    def test_repr(self):
        assert "∈̇" in repr(in_regex(x, "a*"))
