"""Tests for the NFA/DFA pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.fcreg.automata import (
    DFA,
    NFA,
    compile_regex,
    regex_language_slice,
    regex_matches,
)
from repro.fcreg.regex import parse_regex

words = st.text(alphabet="ab", max_size=7)


class TestNFA:
    @given(words)
    def test_nfa_and_dfa_agree(self, w):
        regex = parse_regex("(a|bb)*a?")
        nfa = NFA.from_regex(regex)
        dfa = DFA.from_nfa(nfa)
        assert nfa.accepts(w) == dfa.accepts(w)

    def test_empty_regex_language(self):
        from repro.fcreg.regex import Empty

        nfa = NFA.from_regex(Empty())
        assert not nfa.accepts("")
        assert not nfa.accepts("a")

    def test_alphabet_extraction(self):
        nfa = NFA.from_regex(parse_regex("ab*"))
        assert nfa.alphabet() == {"a", "b"}


class TestDFADecisions:
    def test_emptiness(self):
        from repro.fcreg.regex import Empty

        assert compile_regex(Empty()).is_empty()
        assert not compile_regex(parse_regex("a*")).is_empty()

    def test_finiteness(self):
        assert compile_regex(parse_regex("a|bb|aba")).is_finite()
        assert not compile_regex(parse_regex("a*")).is_finite()
        assert not compile_regex(parse_regex("ab+a")).is_finite()

    def test_finite_language_extraction(self):
        dfa = compile_regex(parse_regex("a|bb|aba"))
        assert dfa.language_if_finite() == {"a", "bb", "aba"}

    def test_finite_extraction_rejects_infinite(self):
        with pytest.raises(ValueError):
            compile_regex(parse_regex("a*")).language_if_finite()

    def test_language_slice(self):
        slice_ = regex_language_slice(parse_regex("(ab)*"), "ab", 4)
        assert slice_ == {"", "ab", "abab"}

    @given(words)
    def test_slice_membership_consistent(self, w):
        regex = parse_regex("a*b*")
        slice_ = regex_language_slice(regex, "ab", 7)
        assert (w in slice_) == regex_matches(regex, w)


class TestPaperPatterns:
    """The concrete regular languages the paper's Section 5 uses."""

    @pytest.mark.parametrize(
        "pattern,member,non_member",
        [
            ("a*", "aaa", "ab"),
            ("(ba)*", "baba", "bab"),
            ("(abaabb)*", "abaabbabaabb", "abaabba"),
            ("(bbaaba)*", "bbaaba", "bbaab"),
            ("a+", "a", ""),
            ("b+", "bb", "ab"),
            ("(ab)*", "abab", "aba"),
        ],
    )
    def test_membership(self, pattern, member, non_member):
        dfa = compile_regex(parse_regex(pattern))
        assert dfa.accepts(member)
        assert not dfa.accepts(non_member)
