"""Tests for boundedness decision and Ginsburg decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fcreg.automata import compile_regex, regex_matches
from repro.fcreg.bounded import (
    BStar,
    BWord,
    bounded_decomposition,
    bounding_sequence,
    is_bounded_by,
    is_bounded_regular,
)
from repro.fcreg.regex import parse_regex
from repro.words.generators import words_up_to

BOUNDED_PATTERNS = [
    "a*",
    "(ba)*",
    "a*b*",
    "ab|b(aa)*",
    "(abaabb)*",
    "a+b+",
    "a?b",
    "(ab)*(ba)*",
    "",
]
UNBOUNDED_PATTERNS = ["(a|b)*", "(ab|ba)*", "a*(b|a)*", "(a|b)(a|b)*"]


class TestBoundednessDecision:
    @pytest.mark.parametrize("pattern", BOUNDED_PATTERNS)
    def test_bounded(self, pattern):
        assert is_bounded_regular(compile_regex(parse_regex(pattern)))

    @pytest.mark.parametrize("pattern", UNBOUNDED_PATTERNS)
    def test_unbounded(self, pattern):
        assert not is_bounded_regular(compile_regex(parse_regex(pattern)))

    def test_finite_languages_are_bounded(self):
        assert is_bounded_regular(compile_regex(parse_regex("a|bb|aab")))


class TestDecomposition:
    @pytest.mark.parametrize("pattern", BOUNDED_PATTERNS)
    def test_decomposition_denotes_same_language(self, pattern):
        regex = parse_regex(pattern)
        expr = bounded_decomposition(compile_regex(regex))
        denoted = expr.words_up_to(8)
        expected = frozenset(
            w for w in words_up_to("ab", 8) if regex_matches(regex, w)
        )
        assert denoted == expected, pattern

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            bounded_decomposition(compile_regex(parse_regex("(a|b)*")))

    def test_empty_language(self):
        from repro.fcreg.regex import Empty

        expr = bounded_decomposition(compile_regex(Empty()))
        assert expr.words_up_to(5) == frozenset()


class TestBoundingSequence:
    @pytest.mark.parametrize("pattern", BOUNDED_PATTERNS)
    def test_sequence_covers_language(self, pattern):
        regex = parse_regex(pattern)
        expr = bounded_decomposition(compile_regex(regex))
        sequence = bounding_sequence(expr)
        for w in words_up_to("ab", 7):
            if regex_matches(regex, w):
                assert is_bounded_by(w, sequence), (pattern, w)

    def test_is_bounded_by_basics(self):
        assert is_bounded_by("aabb", ["a", "b"])
        assert not is_bounded_by("aba", ["a", "b"])
        assert is_bounded_by("", ["a", "b"])
        assert is_bounded_by("abaabbabaabb", ["abaabb", "bbaaba"])

    def test_paper_language_boundedness(self):
        # Lemma 4.14's languages are bounded — the Lemma 5.4 side condition.
        assert is_bounded_by("aabb", ["a", "b"])                 # anbn
        assert is_bounded_by("aababa", ["a", "ba"])              # L1
        assert is_bounded_by("b" + "aa" + "bb", ["b", "a", "b"])  # L3
        assert is_bounded_by("aabbabab", ["a", "b", "ab"])       # L6


class TestExprNodes:
    def test_star_words(self):
        assert BStar("ab").words_up_to(5) == {"", "ab", "abab"}

    def test_word_cutoff(self):
        assert BWord("aaa").words_up_to(2) == frozenset()

    def test_epsilon_star_rejected(self):
        with pytest.raises(ValueError):
            BStar("")
