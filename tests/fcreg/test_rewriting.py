"""Tests for the Lemma 5.4 rewriting: bounded constraints → pure FC."""

import pytest

from repro.fc.semantics import models, satisfying_assignments
from repro.fc.syntax import And, Exists, Not, Var
from repro.fcreg.constraints import in_regex, regular_constraints_of
from repro.fcreg.rewriting import (
    constraint_to_fc,
    eliminate_bounded_constraints,
)
from repro.words.generators import words_up_to

x = Var("x")

BOUNDED = ["a*", "(ba)*", "a*b*", "ab|b(aa)*", "(abaabb)*", "a+", "a?b", ""]
HOSTS = ["", "a", "ab", "abab", "aabb", "bababa", "abaabbab", "bbaaaa"]


def assignments(word, phi):
    return {s[x] for s in satisfying_assignments(word, phi, "ab")}


class TestConstraintRewriting:
    @pytest.mark.parametrize("pattern", BOUNDED)
    def test_rewritten_formula_agrees(self, pattern):
        constraint = in_regex(x, pattern)
        rewritten = constraint_to_fc(constraint)
        assert not regular_constraints_of(rewritten)
        for word in HOSTS:
            assert assignments(word, constraint) == assignments(
                word, rewritten
            ), (pattern, word)

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            constraint_to_fc(in_regex(x, "(a|b)*"))

    def test_constant_subject_rejected(self):
        with pytest.raises(ValueError):
            constraint_to_fc(in_regex("a", "a*"))


class TestFormulaRewriting:
    def test_whole_formula(self):
        from repro.fc.builders import phi_whole_word

        u, v = Var("u"), Var("v")
        phi = Exists(
            u,
            Exists(
                v,
                And(
                    phi_whole_word(u),
                    And(
                        in_regex(u, "a*b*"),
                        And(in_regex(v, "a*"), Not(in_regex(v, "aa*"))),
                    ),
                ),
            ),
        )
        rewritten = eliminate_bounded_constraints(phi)
        assert not regular_constraints_of(rewritten)
        for word in words_up_to("ab", 5):
            assert models(word, phi, "ab") == models(word, rewritten, "ab")

    def test_language_level_agreement(self):
        # Sentence: the whole word is in (ba)* — via constraint vs pure FC.
        from repro.fc.builders import phi_whole_word

        u = Var("u")
        phi = Exists(u, And(phi_whole_word(u), in_regex(u, "(ba)*")))
        rewritten = eliminate_bounded_constraints(phi)
        for word in words_up_to("ab", 6):
            expected = word == "ba" * (len(word) // 2) and len(word) % 2 == 0
            assert models(word, phi, "ab") == expected
            assert models(word, rewritten, "ab") == expected

    def test_plain_fc_passes_through(self):
        from repro.fc.builders import phi_ww

        phi = phi_ww()
        assert eliminate_bounded_constraints(phi) == phi
