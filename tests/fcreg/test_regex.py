"""Tests for the regex AST and parser."""

import pytest
from hypothesis import given, strategies as st

from repro.fcreg.automata import regex_matches
from repro.fcreg.regex import (
    Concat,
    Empty,
    Epsilon,
    Letter,
    Star,
    Union,
    from_words,
    literal,
    parse_regex,
    word_star,
)


class TestParser:
    def test_empty_pattern_is_epsilon(self):
        assert isinstance(parse_regex(""), Epsilon)

    def test_letter(self):
        assert parse_regex("a") == Letter("a")

    def test_concat_and_union_precedence(self):
        # ab|c parses as (ab)|c
        node = parse_regex("ab|c")
        assert isinstance(node, Union)
        assert isinstance(node.left, Concat)

    def test_star_binds_tightest(self):
        node = parse_regex("ab*")
        assert isinstance(node, Concat)
        assert isinstance(node.right, Star)

    def test_plus_desugars(self):
        node = parse_regex("a+")
        assert isinstance(node, Concat)
        assert isinstance(node.right, Star)

    def test_optional_desugars(self):
        node = parse_regex("a?")
        assert isinstance(node, Union)

    def test_groups(self):
        node = parse_regex("(ab)*")
        assert isinstance(node, Star)

    def test_empty_group(self):
        assert isinstance(parse_regex("()"), Epsilon)

    @pytest.mark.parametrize("bad", ["(", ")", "*", "a(", "a|*", "(a"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_regex(bad)

    def test_trailing_paren(self):
        with pytest.raises(ValueError):
            parse_regex("a)b")


class TestBuilders:
    def test_literal(self):
        assert regex_matches(literal("aba"), "aba")
        assert not regex_matches(literal("aba"), "ab")

    def test_literal_epsilon(self):
        assert regex_matches(literal(""), "")

    def test_word_star(self):
        star = word_star("ab")
        assert regex_matches(star, "")
        assert regex_matches(star, "abab")
        assert not regex_matches(star, "aba")

    def test_from_words(self):
        finite = from_words(["a", "bb"])
        assert regex_matches(finite, "a")
        assert regex_matches(finite, "bb")
        assert not regex_matches(finite, "ab")

    def test_from_no_words_is_empty(self):
        assert isinstance(from_words([]), Empty)

    def test_operator_sugar(self):
        node = (Letter("a") | Letter("b")) + Letter("a").star()
        assert regex_matches(node, "baaa")


@given(st.text(alphabet="ab", max_size=6))
def test_a_star_b_star(w):
    pattern = parse_regex("a*b*")
    expected = "ba" not in w  # all a's before all b's
    assert regex_matches(pattern, w) == expected
