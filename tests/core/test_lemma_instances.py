"""Tests for the certified Pseudo-Congruence / Primitive Power instances."""

import pytest

from repro.core.pow2 import pow2_witness
from repro.core.primitive_power import PrimitivePowerInstance
from repro.core.pseudo_congruence import (
    PseudoCongruenceInstance,
    round_overhead,
)


class TestRoundOverhead:
    def test_disjoint(self):
        assert round_overhead("aaa", "bbb") == 0

    def test_prop_4_6_case(self):
        assert round_overhead("aaa", "bababa") == 1

    def test_l6_case(self):
        assert round_overhead("aabb", "abab") == 2


class TestPseudoCongruenceInstance:
    def test_side_condition(self):
        with pytest.raises(ValueError):
            PseudoCongruenceInstance("ab", "ba", "aa", "bb", 1, "ab")

    def test_example_4_5_full_slack_k0(self):
        """k = 0, r = 0 → look-ups need 2 rounds: exactly certifiable
        with the (12, 14) pair.  The only fully-provisioned non-trivial
        instance within exact reach."""
        p, q = pow2_witness(2).p, pow2_witness(2).q
        instance = PseudoCongruenceInstance(
            "a" * p, "bb", "a" * q, "bb", 0, "ab"
        )
        assert instance.r == 0
        assert instance.lookup_rounds == 2
        assert instance.premises_hold()
        result = instance.verify_strategy()
        assert result.survived
        assert instance.verify_conclusion()

    def test_identity_instance_k2(self):
        instance = PseudoCongruenceInstance("ab", "ba", "ab", "ba", 2, "ab")
        assert instance.premises_hold()
        assert instance.verify_strategy().survived
        assert instance.verify_conclusion()

    def test_prop_4_6_structure_k1(self):
        """a^q(ba)^q ≡₁ a^p(ba)^q with r = 1; look-ups under-provisioned
        (2 < k+r+2 = 4) — the strategy still survives the 1-round game,
        and the conclusion is confirmed exactly."""
        p, q = 12, 14
        instance = PseudoCongruenceInstance(
            "a" * q, "ba" * q, "a" * p, "ba" * q, 1, "ab"
        )
        assert instance.r == 1
        result = instance.verify_strategy(lookup_rounds=2)
        assert result.survived
        assert instance.verify_conclusion()

    def test_premise_failure_detected(self):
        instance = PseudoCongruenceInstance("a", "b", "aa", "b", 0, "ab")
        # a ≢₂ aa (constants distinguish 1 from 2 quickly).
        assert not instance.premises_hold()


class TestPrimitivePowerInstance:
    def test_requires_primitive(self):
        with pytest.raises(ValueError):
            PrimitivePowerInstance("abab", 2, 3, 1, "ab")

    def test_alphabet_check(self):
        with pytest.raises(ValueError):
            PrimitivePowerInstance("ab", 2, 3, 1, "a")

    def test_identity_instance(self):
        instance = PrimitivePowerInstance("aba", 2, 2, 2, "ab")
        assert instance.premise_holds(lookup_rounds=2)
        assert instance.verify_strategy(lookup_rounds=0).survived

    def test_12_14_instance_premise(self):
        instance = PrimitivePowerInstance("ab", 12, 14, 0, "ab")
        # k = 0 needs a^12 ≡₃ a^14 — which is FALSE (the ≡₃ pair exceeds
        # 48), so the premise at full slack fails ...
        assert not instance.premise_holds()
        # ... but holds at the certifiable rank 2.
        assert instance.premise_holds(lookup_rounds=2)

    def test_conclusion_direct(self):
        instance = PrimitivePowerInstance("ab", 12, 14, 1, "ab")
        assert instance.verify_conclusion()
