"""Tests for the certificate bundle (solver-free re-verification)."""

import json

import pytest

from repro.core.certificates import bundle_to_json, generate_bundle, verify_bundle


@pytest.fixture(scope="module")
def bundle():
    return generate_bundle(synthesis_max_length=2, witness_ranks=(0, 1))


class TestGeneration:
    def test_schema(self, bundle):
        assert bundle["schema"] == "repro.certificates/1"
        assert bundle["unary_minimal_pairs"]["2"] == [12, 14]

    def test_all_languages_covered(self, bundle):
        covered = {entry["language"] for entry in bundle["language_witnesses"]}
        assert covered == {"anbn", "L1", "L2", "L3", "L4", "L5", "L6"}

    def test_synthesis_entries_present(self, bundle):
        assert bundle["separating_sentences"]
        entry = bundle["separating_sentences"][0]
        assert {"left", "right", "rank", "formula", "alphabet"} <= set(entry)

    def test_json_round_trip(self, bundle):
        text = bundle_to_json(bundle)
        assert json.loads(text) == bundle


class TestVerification:
    def test_bundle_verifies(self, bundle):
        assert verify_bundle(bundle) == []

    def test_tampered_member_detected(self, bundle):
        tampered = json.loads(bundle_to_json(bundle))
        tampered["language_witnesses"][0]["member"] = "bbbbba"
        failures = verify_bundle(tampered)
        assert any("not in the language" in f for f in failures)

    def test_tampered_formula_detected(self, bundle):
        tampered = json.loads(bundle_to_json(bundle))
        if not tampered["separating_sentences"]:
            pytest.skip("no synthesis entries at this size")
        tampered["separating_sentences"][0]["formula"] = "(x = a"
        failures = verify_bundle(tampered)
        assert any("unparseable" in f for f in failures)

    def test_swapped_words_detected(self, bundle):
        tampered = json.loads(bundle_to_json(bundle))
        entry = tampered["separating_sentences"][0]
        entry["left"], entry["right"] = entry["right"], entry["left"]
        failures = verify_bundle(tampered)
        assert failures

    def test_unknown_schema_rejected(self):
        assert verify_bundle({"schema": "nope"}) != []
