"""Tests for the L₁…L₆ witness families (Lemma 4.14 as data)."""

import pytest

from repro.core.witnesses import WITNESS_FAMILIES, witness_family
from repro.words.generators import PAPER_LANGUAGES

ALL_NAMES = sorted(WITNESS_FAMILIES)


class TestMemberships:
    """member ∈ L and foil ∉ L — exact for every family, every small k."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_pair_memberships(self, name, k):
        family = witness_family(name)
        pair = family.pair(k)
        assert pair.verify_memberships(PAPER_LANGUAGES[name]), (
            name,
            k,
            pair.member,
            pair.foil,
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_pair_records_ranks(self, name):
        family = witness_family(name)
        pair = family.pair(1)
        assert pair.required_unary_rank == 1 + family.rank_overhead
        assert pair.certified_unary_rank <= 2
        assert pair.p < pair.q


class TestEquivalences:
    """Exact-solver ≡_k verification of the witness pairs."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_k0(self, name):
        pair = witness_family(name).pair(0)
        assert pair.verify_equivalence("ab")

    @pytest.mark.parametrize("name", ["anbn", "L1", "L3", "L4", "L6"])
    def test_k1(self, name):
        pair = witness_family(name).pair(1)
        assert pair.verify_equivalence("ab")


class TestLookupErrors:
    def test_unknown_language(self):
        with pytest.raises(KeyError):
            witness_family("L99")
