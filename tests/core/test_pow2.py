"""Tests for the Lemma 3.6 witness machinery."""

import pytest

from repro.core.pow2 import (
    KNOWN_MINIMAL_PAIRS,
    Pow2Witness,
    pow2_semilinearity_evidence,
    pow2_witness,
)
from repro.ef.unary import unary_equiv_k


class TestWitnessTable:
    @pytest.mark.parametrize("k", sorted(KNOWN_MINIMAL_PAIRS))
    def test_table_entries_verified(self, k):
        witness = pow2_witness(k, verify=True)
        assert witness.p < witness.q
        assert unary_equiv_k(witness.p, witness.q, k)

    @pytest.mark.parametrize("k", sorted(KNOWN_MINIMAL_PAIRS))
    def test_table_entries_are_minimal(self, k):
        p, q = KNOWN_MINIMAL_PAIRS[k]
        # No lexicographically smaller pair is equivalent.
        for pp in range(p + 1):
            for qq in range(pp + 1, (q if pp == p else q + 1)):
                assert not unary_equiv_k(pp, qq, k), (pp, qq, k)

    def test_words_helper(self):
        witness = Pow2Witness(1, 3, 4)
        assert witness.words() == ("aaa", "aaaa")

    def test_unknown_rank_searches(self):
        # Rank 3 has no table entry and no pair ≤ 8.
        with pytest.raises(LookupError):
            pow2_witness(3, max_exponent=8)


class TestSemilinearityEvidence:
    def test_evidence_shape(self):
        evidence = pow2_semilinearity_evidence(bound=256)
        assert evidence["eventually_periodic"] is None
        assert evidence["gaps_strictly_increasing"]
        assert evidence["members"][0] == 1
        assert all(
            later == 2 * earlier
            for earlier, later in zip(
                evidence["members"], evidence["members"][1:]
            )
        )
