"""Tests for Theorem 5.8 relations and ψ-reductions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.relations import (
    OracleAtom,
    PSI_REDUCTIONS,
    RELATIONS,
    add_rel,
    morph_rel,
    mult_rel,
    num_a,
    oracle_for,
    perm_rel,
    psi_reduction,
    rev_rel,
    scatt_rel,
    shuff_rel,
)
from repro.fc.semantics import defines_language_member, models
from repro.fc.syntax import Var
from repro.words.generators import PAPER_LANGUAGES, words_up_to

short = st.text(alphabet="ab", max_size=5)


class TestPredicates:
    @given(short, short)
    def test_num_a(self, x, y):
        assert num_a(x, y) == (x.count("a") == y.count("a"))

    @given(short, short, short)
    def test_add(self, x, y, z):
        assert add_rel(x, y, z) == (len(z) == len(x) + len(y))

    def test_mult(self):
        assert mult_rel("aa", "bbb", "a" * 6)
        assert not mult_rel("aa", "bbb", "a" * 5)

    def test_scatt_perm_rev(self):
        assert scatt_rel("aa", "aba")
        assert perm_rel("ab", "ba")
        assert rev_rel("ab", "ba")
        assert not rev_rel("ab", "ab") or True  # "ab" reversed is "ba"
        assert not rev_rel("ab", "ab")

    def test_shuff(self):
        assert shuff_rel("ab", "b", "abb")
        assert not shuff_rel("ab", "b", "bba")

    def test_morph(self):
        assert morph_rel("aab", "bbb")
        assert not morph_rel("a", "a")


class TestOracleAtom:
    def test_evaluation(self):
        x, y = Var("x"), Var("y")
        atom = OracleAtom((x, y), lambda u, v: len(u) == len(v), "LenEq")
        assert models("ab", atom, "ab", {x: "a", y: "b"})
        assert not models("ab", atom, "ab", {x: "a", y: "ab"})

    def test_substitution(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        atom = OracleAtom((x, y), num_a)
        replaced = atom._substitute({x: z})
        assert replaced.variables == (z, y)

    def test_oracle_for_arity(self):
        for name, (_, arity) in RELATIONS.items():
            assert len(oracle_for(name).variables) == arity


class TestPsiReductions:
    """L(ψᵢ) = Lᵢ when the relation atom has its intended semantics —
    the reduction step of Theorem 5.8, machine-checked."""

    @pytest.mark.parametrize("name", sorted(PSI_REDUCTIONS))
    def test_reduction_agrees_on_short_words(self, name):
        reduction = psi_reduction(name)
        oracle = PAPER_LANGUAGES[reduction.target_language]
        psi = reduction.build(oracle_for(name))
        for word in words_up_to("ab", 6):
            assert defines_language_member(word, psi, "ab") == (
                word in oracle
            ), (name, word)

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            psi_reduction("NoSuchRelation")

    def test_arity_mismatch_detected(self):
        x = Var("x")
        unary_atom = OracleAtom((x,), lambda u: True)
        with pytest.raises(ValueError):
            psi_reduction("Num_a").build(unary_atom)

    def test_paper_erratum_notes_present(self):
        assert PSI_REDUCTIONS["Scatt"].note
        assert PSI_REDUCTIONS["Shuff"].note
