"""Tests for the Fooling Lemma machinery."""

import pytest

from repro.core.fooling import FoolingBudget, fooling_budget, fooling_pair
from repro.words.generators import l5_coprimitive_blocks


class TestBudget:
    def test_coprimitivity_required(self):
        with pytest.raises(ValueError):
            fooling_budget(1, "", "ab", "", "ba", "")

    def test_l5_budget(self):
        budget = fooling_budget(0, "", "abaabb", "", "bbaaba", "")
        assert budget.r3 >= 1
        assert budget.inner > budget.k
        assert budget.unary_rank == budget.inner + 3
        assert not budget.fully_certified  # rank far beyond exact reach

    def test_budget_monotone_in_k(self):
        b0 = fooling_budget(0, "", "abaabb", "", "bbaaba", "")
        b2 = fooling_budget(2, "", "abaabb", "", "bbaaba", "")
        assert b2.unary_rank > b0.unary_rank


class TestFoolingPair:
    def test_l5_pair_memberships(self):
        pair = fooling_pair(0, "", "abaabb", "", "bbaaba", "")
        assert pair.member in l5_coprimitive_blocks
        assert pair.foil not in l5_coprimitive_blocks
        assert pair.p != pair.q

    def test_injective_f_shifts(self):
        pair = fooling_pair(
            0, "", "aba", "", "bba", "", f=lambda p: 2 * p + 1
        )
        assert pair.member == "aba" * pair.p + "bba" * (2 * pair.p + 1)
        assert pair.foil == "aba" * pair.q + "bba" * (2 * pair.p + 1)

    def test_with_fixed_contexts(self):
        pair = fooling_pair(0, "bb", "aba", "b", "bba", "aa")
        assert pair.member.startswith("bb")
        assert pair.member.endswith("aa")
        # member and foil differ exactly in the u-block exponent.
        assert pair.member.count("aba") != pair.foil.count("aba") or (
            len(pair.member) != len(pair.foil)
        )

    def test_equivalence_verification_k0(self):
        pair = fooling_pair(0, "", "aba", "", "bba", "")
        assert pair.verify_equivalence(0, "ab")
