"""Negative paths of the report generators — failures must be loud."""

import pytest

from repro.core.inexpressibility import (
    LanguageReport,
    language_report,
    relation_report,
)
from repro.core.witnesses import WITNESS_FAMILIES, WitnessFamily
from repro.words.generators import LanguageOracle, PAPER_LANGUAGES


class TestVerdictPaths:
    def test_failed_when_membership_breaks(self, monkeypatch):
        # Sabotage the anbn family: a builder whose "member" is wrong.
        broken = WitnessFamily(
            "anbn",
            PAPER_LANGUAGES["anbn"],
            2,
            lambda p, q: ("a" * p + "b" * q, "a" * q + "b" * p),  # member ∉ L
            "sabotage",
        )
        monkeypatch.setitem(WITNESS_FAMILIES, "anbn", broken)
        report = language_report("anbn", ranks=(1,), verify_equivalence_up_to=0)
        assert not report.memberships_ok
        assert report.verdict == "FAILED"

    def test_equiv_check_failed_when_pair_inequivalent(self, monkeypatch):
        # A witness pair that is NOT ≡_k: solver check must fail loudly.
        broken = WitnessFamily(
            "anbn",
            PAPER_LANGUAGES["anbn"],
            2,
            lambda p, q: ("a" * p + "b" * p, "a" * (p + 1) + "b" * p),
            "sabotage",
        )
        monkeypatch.setitem(WITNESS_FAMILIES, "anbn", broken)
        report = language_report("anbn", ranks=(2,), verify_equivalence_up_to=2)
        # a^{p+1} b^p with consecutive exponents is separated at rank 2.
        assert report.equivalences == {2: False}
        assert report.verdict == "EQUIV-CHECK-FAILED"

    def test_relation_report_detects_wrong_target(self):
        # Plug the Num_a reduction against the WRONG oracle by checking a
        # longer slice against L2 semantics: simulate via a direct call on
        # a reduction whose note we can inspect instead — the public
        # surface here is first_disagreement on honest inputs:
        report = relation_report("Num_a", max_length=5)
        assert report.reduction_agrees
        assert report.first_disagreement is None

    def test_language_report_verdict_repr(self):
        report = LanguageReport("L1", "test-ref")
        assert report.verdict == "confirmed"
        report.bounded = False
        assert report.verdict == "FAILED"
        report.bounded = True
        report.equivalences = {1: False}
        assert report.verdict == "EQUIV-CHECK-FAILED"
