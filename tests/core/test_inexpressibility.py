"""Tests for the top-level report generators."""

import pytest

from repro.core.inexpressibility import (
    BOUNDING_SEQUENCES,
    language_report,
    relation_report,
)
from repro.core.witnesses import WITNESS_FAMILIES
from repro.fcreg.bounded import is_bounded_by
from repro.words.generators import PAPER_LANGUAGES


class TestLanguageReports:
    @pytest.mark.parametrize("name", sorted(WITNESS_FAMILIES))
    def test_confirmed(self, name):
        report = language_report(
            name, ranks=(0, 1), verify_equivalence_up_to=0
        )
        assert report.verdict == "confirmed"
        assert report.memberships_ok
        assert report.bounded
        assert len(report.pairs) == 2

    def test_equivalence_results_recorded(self):
        report = language_report(
            "anbn", ranks=(0,), verify_equivalence_up_to=0
        )
        assert report.equivalences == {0: True}


class TestBoundingSequences:
    @pytest.mark.parametrize("name", sorted(BOUNDING_SEQUENCES))
    def test_sequences_cover_members(self, name):
        oracle = PAPER_LANGUAGES[name]
        sequence = BOUNDING_SEQUENCES[name]
        for word in oracle.members_up_to(10):
            assert is_bounded_by(word, sequence), (name, word)


class TestRelationReports:
    @pytest.mark.parametrize(
        "name", ["Num_a", "Add", "Mult", "Perm", "Rev", "Morph_h"]
    )
    def test_reductions_agree(self, name):
        report = relation_report(name, max_length=6)
        assert report.reduction_agrees, report.first_disagreement

    def test_scatt_and_shuff_with_corrections(self):
        for name in ("Scatt", "Shuff"):
            report = relation_report(name, max_length=6)
            assert report.reduction_agrees, (name, report.first_disagreement)
            assert report.note  # the documented paper corrections
