"""Scheduler semantics: dep injection, isolation, caching, parallelism."""

import pytest

from repro.engine import ResultCache, TaskRegistry, run_tasks

TASKFNS = "tests.engine.taskfns"


def _registry() -> TaskRegistry:
    registry = TaskRegistry()
    registry.add("base", f"{TASKFNS}:const", args={"value": 21})
    registry.add("doubled", f"{TASKFNS}:double", deps={"n": "base"})
    registry.add(
        "summed", f"{TASKFNS}:add", args={"y": 8}, deps={"x": "doubled"}
    )
    registry.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    return registry


def _stable(report):
    """The deterministic projection of a report's records."""
    return [
        (r["task"], r["status"], r["result"]) for r in report.records
    ]


def test_jobs1_runs_in_order_and_injects_deps(tmp_path):
    seen = []
    report = run_tasks(
        _registry(),
        jobs=1,
        cache=ResultCache(root=tmp_path),
        on_record=lambda record: seen.append(record["task"]),
    )
    assert report.ok
    assert report.record_for("doubled")["result"] == 42
    assert report.record_for("summed")["result"] == 50
    # Records come back sorted by name; completion order is topological.
    assert [r["task"] for r in report.records] == sorted(seen)
    assert seen.index("base") < seen.index("doubled") < seen.index("summed")
    assert all(r["cache"] == "miss" for r in report.records)
    assert report.record_for("summed")["wall_time_s"] >= 0


def test_failure_isolation_and_dependent_skipping(tmp_path):
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    registry.add("downstream", f"{TASKFNS}:double", deps={"n": "fails"})
    registry.add("unrelated", f"{TASKFNS}:const", args={"value": 7})
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))

    assert not report.ok
    assert report.counts() == {"ok": 1, "error": 1, "skipped": 1}
    failed = report.record_for("fails")
    assert failed["error"]["type"] == "RuntimeError"
    assert "intentional failure" in failed["error"]["message"]
    skipped = report.record_for("downstream")
    assert skipped["status"] == "skipped"
    assert "fails" in skipped["error"]["message"]
    assert report.record_for("unrelated")["result"] == 7


def test_error_records_are_not_cached(tmp_path):
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    rerun = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert rerun.record_for("fails")["cache"] == "miss"


def test_non_json_result_is_an_error_not_a_crash(tmp_path):
    registry = TaskRegistry()
    registry.add("bad", f"{TASKFNS}:not_json")
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.record_for("bad")["status"] == "error"
    assert report.record_for("bad")["error"]["type"] == "TypeError"


def test_results_are_json_normalised(tmp_path):
    registry = TaskRegistry()
    registry.add("tupled", f"{TASKFNS}:tupled")
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.record_for("tupled")["result"] == {
        "pair": [1, 2],
        "table": {"3": "c"},
    }


def test_warm_run_hits_with_identical_payloads(tmp_path):
    cold = run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    warm = run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    assert warm.ok
    assert all(r["cache"] == "hit" for r in warm.records)
    assert warm.cache["hits"] == len(warm.records)
    assert warm.cache["hit_rate"] == 1.0
    assert _stable(cold) == _stable(warm)


def test_version_bump_reruns_task_and_dependents(tmp_path):
    run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    bumped = TaskRegistry()
    bumped.add("base", f"{TASKFNS}:const", args={"value": 21}, version="2")
    bumped.add("doubled", f"{TASKFNS}:double", deps={"n": "base"})
    bumped.add(
        "summed", f"{TASKFNS}:add", args={"y": 8}, deps={"x": "doubled"}
    )
    bumped.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    report = run_tasks(bumped, jobs=1, cache=ResultCache(root=tmp_path))
    # The bumped task misses, and the new dependency keys cascade
    # Merkle-style through its consumers; the unrelated task still hits.
    assert report.record_for("base")["cache"] == "miss"
    assert report.record_for("doubled")["cache"] == "miss"
    assert report.record_for("summed")["cache"] == "miss"
    assert report.record_for("loner")["cache"] == "hit"


def test_no_cache_bypasses(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=False)
    report = run_tasks(_registry(), jobs=1, cache=cache)
    assert report.ok
    assert all(r["cache"] == "bypass" for r in report.records)
    assert report.cache["bypassed"] == len(report.records)
    assert not any(tmp_path.rglob("*.json"))


def test_only_restricts_to_dependency_closure(tmp_path):
    report = run_tasks(
        _registry(),
        jobs=1,
        cache=ResultCache(root=tmp_path),
        only=["doubled"],
    )
    assert {r["task"] for r in report.records} == {"base", "doubled"}


def _uncap_cpus(monkeypatch, count=8):
    """Pretend the host has ``count`` cores so jobs>1 is not capped."""
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: count)


def test_parallel_run_matches_serial(tmp_path, monkeypatch):
    _uncap_cpus(monkeypatch)
    serial = run_tasks(
        _registry(), jobs=1, cache=ResultCache(root=tmp_path / "serial")
    )
    parallel = run_tasks(
        _registry(), jobs=2, cache=ResultCache(root=tmp_path / "parallel")
    )
    assert parallel.jobs == 2
    assert _stable(serial) == _stable(parallel)


def test_parallel_failure_isolation(tmp_path, monkeypatch):
    _uncap_cpus(monkeypatch)
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    registry.add("downstream", f"{TASKFNS}:double", deps={"n": "fails"})
    registry.add("unrelated", f"{TASKFNS}:const", args={"value": 7})
    report = run_tasks(registry, jobs=2, cache=ResultCache(root=tmp_path))
    assert report.counts() == {"ok": 1, "error": 1, "skipped": 1}


def test_jobs_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        run_tasks(_registry(), jobs=0, cache=ResultCache(root=tmp_path))


# -- lru-cache / solver-stats aggregation -----------------------------------


def test_pool_worker_cache_activity_is_merged(tmp_path, monkeypatch):
    """Worker-process lru activity must surface in the final report.

    The real experiment tasks import the solver stack lazily inside the
    executing process, so with a worker pool the parent's own snapshot
    sees none of their cache traffic — the report must merge the
    per-record deltas instead (this was the `registered: []` bug).
    """
    _uncap_cpus(monkeypatch)
    registry = TaskRegistry()
    registry.add(
        "f1", f"{TASKFNS}:factor_count", args={"word": "abcabcabbacb"}
    )
    registry.add(
        "f2", f"{TASKFNS}:factor_count", args={"word": "bbacbacabcab"}
    )
    report = run_tasks(registry, jobs=2, cache=ResultCache(root=tmp_path))
    assert report.ok
    assert "words.factors.factors" in report.lru_caches["registered"]
    workers = report.lru_caches["workers"]
    bucket = workers["words.factors.factors"]
    assert bucket["hits"] + bucket["misses"] >= 2
    # Totals = parent aggregate + worker deltas, so they must dominate
    # the parent-only numbers by exactly the merged worker activity.
    parent = report.lru_caches["main_process"]
    parent_hits = sum(c["hits"] for c in parent.values())
    merged_hits = sum(c["hits"] for c in workers.values())
    assert report.lru_caches["totals"]["hits"] == parent_hits + merged_hits
    for record in report.records:
        assert "words.factors.factors" in record["lru_registered"]


def test_sequential_run_does_not_double_count(tmp_path):
    registry = TaskRegistry()
    registry.add(
        "f1", f"{TASKFNS}:factor_count", args={"word": "abcacbabcacb"}
    )
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.ok
    # Sequential execution happens in this process: its deltas are already
    # inside the main snapshot, so no worker bucket may exist for them.
    assert report.lru_caches["workers"] == {}
    parent_hits = sum(
        c["hits"] for c in report.lru_caches["main_process"].values()
    )
    assert report.lru_caches["totals"]["hits"] == parent_hits


def test_solver_stats_flow_into_report(tmp_path):
    registry = TaskRegistry()
    registry.add(
        # Words chosen to be unique to this test: solver_for is a shared
        # per-process cache, and a solver warmed by another test would
        # report a zero delta here.
        "probe", f"{TASKFNS}:ef_probe", args={"w": "aabbab", "v": "aababb", "k": 2}
    )
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.ok
    delta = report.record_for("probe")["solver_delta"]
    assert delta["positions_explored"] > 0
    totals = report.solver["totals"]
    assert totals["positions_explored"] >= delta["positions_explored"]
    # A warm rerun does no solver work and must not report any.
    warm = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert warm.record_for("probe")["cache"] == "hit"
    assert warm.record_for("probe")["solver_delta"] == {}


def test_jobs_capped_at_cpu_count(tmp_path, monkeypatch):
    import repro.engine.executor as executor_module

    monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 2)
    registry = TaskRegistry()
    registry.add("only", f"{TASKFNS}:const", args={"value": 1})
    report = run_tasks(registry, jobs=64, cache=ResultCache(root=tmp_path))
    assert report.jobs == 2
    assert report.jobs_requested == 64
    assert report.to_json_dict()["engine"]["jobs"] == 2
    assert report.to_json_dict()["engine"]["jobs_requested"] == 64


def test_jobs_within_cpu_count_is_untouched(tmp_path):
    registry = TaskRegistry()
    registry.add("only", f"{TASKFNS}:const", args={"value": 1})
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.jobs == 1
    assert report.jobs_requested == 1
