"""Scheduler semantics: dep injection, isolation, caching, parallelism."""

import pytest

from repro.engine import ResultCache, TaskRegistry, run_tasks

TASKFNS = "tests.engine.taskfns"


def _registry() -> TaskRegistry:
    registry = TaskRegistry()
    registry.add("base", f"{TASKFNS}:const", args={"value": 21})
    registry.add("doubled", f"{TASKFNS}:double", deps={"n": "base"})
    registry.add(
        "summed", f"{TASKFNS}:add", args={"y": 8}, deps={"x": "doubled"}
    )
    registry.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    return registry


def _stable(report):
    """The deterministic projection of a report's records."""
    return [
        (r["task"], r["status"], r["result"]) for r in report.records
    ]


def test_jobs1_runs_in_order_and_injects_deps(tmp_path):
    seen = []
    report = run_tasks(
        _registry(),
        jobs=1,
        cache=ResultCache(root=tmp_path),
        on_record=lambda record: seen.append(record["task"]),
    )
    assert report.ok
    assert report.record_for("doubled")["result"] == 42
    assert report.record_for("summed")["result"] == 50
    # Records come back sorted by name; completion order is topological.
    assert [r["task"] for r in report.records] == sorted(seen)
    assert seen.index("base") < seen.index("doubled") < seen.index("summed")
    assert all(r["cache"] == "miss" for r in report.records)
    assert report.record_for("summed")["wall_time_s"] >= 0


def test_failure_isolation_and_dependent_skipping(tmp_path):
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    registry.add("downstream", f"{TASKFNS}:double", deps={"n": "fails"})
    registry.add("unrelated", f"{TASKFNS}:const", args={"value": 7})
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))

    assert not report.ok
    assert report.counts() == {"ok": 1, "error": 1, "skipped": 1}
    failed = report.record_for("fails")
    assert failed["error"]["type"] == "RuntimeError"
    assert "intentional failure" in failed["error"]["message"]
    skipped = report.record_for("downstream")
    assert skipped["status"] == "skipped"
    assert "fails" in skipped["error"]["message"]
    assert report.record_for("unrelated")["result"] == 7


def test_error_records_are_not_cached(tmp_path):
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    rerun = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert rerun.record_for("fails")["cache"] == "miss"


def test_non_json_result_is_an_error_not_a_crash(tmp_path):
    registry = TaskRegistry()
    registry.add("bad", f"{TASKFNS}:not_json")
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.record_for("bad")["status"] == "error"
    assert report.record_for("bad")["error"]["type"] == "TypeError"


def test_results_are_json_normalised(tmp_path):
    registry = TaskRegistry()
    registry.add("tupled", f"{TASKFNS}:tupled")
    report = run_tasks(registry, jobs=1, cache=ResultCache(root=tmp_path))
    assert report.record_for("tupled")["result"] == {
        "pair": [1, 2],
        "table": {"3": "c"},
    }


def test_warm_run_hits_with_identical_payloads(tmp_path):
    cold = run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    warm = run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    assert warm.ok
    assert all(r["cache"] == "hit" for r in warm.records)
    assert warm.cache["hits"] == len(warm.records)
    assert warm.cache["hit_rate"] == 1.0
    assert _stable(cold) == _stable(warm)


def test_version_bump_reruns_task_and_dependents(tmp_path):
    run_tasks(_registry(), jobs=1, cache=ResultCache(root=tmp_path))
    bumped = TaskRegistry()
    bumped.add("base", f"{TASKFNS}:const", args={"value": 21}, version="2")
    bumped.add("doubled", f"{TASKFNS}:double", deps={"n": "base"})
    bumped.add(
        "summed", f"{TASKFNS}:add", args={"y": 8}, deps={"x": "doubled"}
    )
    bumped.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    report = run_tasks(bumped, jobs=1, cache=ResultCache(root=tmp_path))
    # The bumped task misses, and the new dependency keys cascade
    # Merkle-style through its consumers; the unrelated task still hits.
    assert report.record_for("base")["cache"] == "miss"
    assert report.record_for("doubled")["cache"] == "miss"
    assert report.record_for("summed")["cache"] == "miss"
    assert report.record_for("loner")["cache"] == "hit"


def test_no_cache_bypasses(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=False)
    report = run_tasks(_registry(), jobs=1, cache=cache)
    assert report.ok
    assert all(r["cache"] == "bypass" for r in report.records)
    assert report.cache["bypassed"] == len(report.records)
    assert not any(tmp_path.rglob("*.json"))


def test_only_restricts_to_dependency_closure(tmp_path):
    report = run_tasks(
        _registry(),
        jobs=1,
        cache=ResultCache(root=tmp_path),
        only=["doubled"],
    )
    assert {r["task"] for r in report.records} == {"base", "doubled"}


def test_parallel_run_matches_serial(tmp_path):
    serial = run_tasks(
        _registry(), jobs=1, cache=ResultCache(root=tmp_path / "serial")
    )
    parallel = run_tasks(
        _registry(), jobs=2, cache=ResultCache(root=tmp_path / "parallel")
    )
    assert parallel.jobs == 2
    assert _stable(serial) == _stable(parallel)


def test_parallel_failure_isolation(tmp_path):
    registry = TaskRegistry()
    registry.add("fails", f"{TASKFNS}:boom")
    registry.add("downstream", f"{TASKFNS}:double", deps={"n": "fails"})
    registry.add("unrelated", f"{TASKFNS}:const", args={"value": 7})
    report = run_tasks(registry, jobs=2, cache=ResultCache(root=tmp_path))
    assert report.counts() == {"ok": 1, "error": 1, "skipped": 1}


def test_jobs_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        run_tasks(_registry(), jobs=0, cache=ResultCache(root=tmp_path))
