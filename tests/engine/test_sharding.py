"""Intra-task sharding: expansion, bit-identity, caching, attribution.

The contract under test (DESIGN.md "sharding"): a task with a
:class:`~repro.engine.spec.ShardPlan` commits a record bit-identical to
the monolithic run at every width; dependents hash the plain task key,
so changing the width re-runs only the shards and the merge; shard
failures surface as one ``ShardFailure`` task error; and the merge
record's counter deltas are the sum of the shard deltas (exact
conservation for real solver counters, duplicated stem work measured
separately in ``shard_overhead_ops``).
"""

import os

import pytest

from repro.engine import ResultCache, TaskRegistry, run_tasks
from repro.engine.spec import ShardPlan, TaskSpec, canonical_json

TASKFNS = "tests.engine.taskfns"

RANGE_PLAN = ShardPlan(
    f"{TASKFNS}:plan_range",
    f"{TASKFNS}:range_part",
    f"{TASKFNS}:range_merge",
)


def _registry(n: int = 10) -> TaskRegistry:
    registry = TaskRegistry()
    registry.add(
        "ranged", f"{TASKFNS}:range_sum", args={"n": n}, shards=RANGE_PLAN
    )
    registry.add(
        "doubled", f"{TASKFNS}:double_total", deps={"part": "ranged"}
    )
    registry.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    return registry


def _uncap_cpus(monkeypatch, count: int = 8) -> None:
    monkeypatch.setattr(os, "cpu_count", lambda: count)


def _stable(report):
    return [(r["task"], r["status"], r["result"]) for r in report.records]


# -- bit-identity across widths ----------------------------------------------


@pytest.mark.parametrize("width", [2, 3, 4])
def test_sharded_result_is_bit_identical_to_monolithic(tmp_path, width):
    mono = run_tasks(
        _registry(),
        jobs=1,
        shards=1,
        cache=ResultCache(root=tmp_path / "mono"),
    )
    sharded = run_tasks(
        _registry(),
        jobs=1,
        shards=width,
        cache=ResultCache(root=tmp_path / str(width)),
    )
    assert sharded.ok
    assert canonical_json(_stable(mono)) == canonical_json(_stable(sharded))
    record = sharded.record_for("ranged")
    assert [row["index"] for row in record["shards"]] == list(range(width))
    assert sharded.shards["width"] == width
    assert sharded.shards["tasks"]["ranged"]["count"] == width
    # The monolithic run never expanded anything.
    assert "shards" not in mono.record_for("ranged")
    assert mono.shards["tasks"] == {}


def test_single_descriptor_plan_stays_monolithic(tmp_path):
    # n=1 gives the planner one lane regardless of width: the engine
    # must fall back to the plain task path (no merge, no salted key).
    report = run_tasks(
        _registry(n=1),
        jobs=1,
        shards=4,
        cache=ResultCache(root=tmp_path),
    )
    assert report.ok
    assert "shards" not in report.record_for("ranged")
    assert report.shards["tasks"] == {}


def test_clamped_width_is_recorded_in_report(tmp_path):
    # Three values cannot fill eight lanes: the planner clamps to three
    # shards and the report says so instead of silently under-sharding.
    report = run_tasks(
        _registry(n=3),
        jobs=1,
        shards=8,
        cache=ResultCache(root=tmp_path),
    )
    assert report.ok
    assert report.shards["width"] == 8
    assert report.shards["requested"] == 8
    summary = report.shards["tasks"]["ranged"]
    assert summary["effective_width"] == 3
    assert summary["clamped"] is True
    assert len(report.record_for("ranged")["shards"]) == 3
    # An unclamped run reports effective width == requested width.
    full = run_tasks(
        _registry(),
        jobs=1,
        shards=4,
        cache=ResultCache(root=tmp_path / "full"),
    )
    assert full.shards["tasks"]["ranged"]["effective_width"] == 4
    assert full.shards["tasks"]["ranged"]["clamped"] is False


def test_requested_width_is_none_when_defaulted(tmp_path, monkeypatch):
    _uncap_cpus(monkeypatch)
    report = run_tasks(
        _registry(), jobs=2, cache=ResultCache(root=tmp_path)
    )
    assert report.shards["width"] == 2
    assert report.shards["requested"] is None


def test_planners_clamp_to_available_lanes():
    from repro.engine.shards import (
        clamp_width,
        length_band_plan,
        round_robin,
        subtree_plan,
    )

    assert clamp_width(64, 10) == 10
    assert clamp_width(2, 10) == 2
    assert clamp_width(0, 10) == 1
    # round_robin never deals more lanes than values.
    assert len(round_robin([1, 2, 3], 8)) == 3
    # Binary alphabet, depth capped at max_length: at most |Σ|^max_length
    # subtree shards no matter the requested width.
    plans = subtree_plan("ab", 2, 64)
    assert len(plans) == 4
    covered = sorted(p for plan in plans for p in plan["prefixes"])
    assert covered == ["aa", "ab", "ba", "bb"]
    # Unary grid: at most max_length + 1 length bands.
    bands = length_band_plan("a", 3, 64)
    assert len(bands) == 4
    assert sorted(n for band in bands for n in band["lengths"]) == [0, 1, 2, 3]


def test_default_width_is_effective_jobs(tmp_path, monkeypatch):
    _uncap_cpus(monkeypatch)
    serial = run_tasks(
        _registry(), jobs=1, cache=ResultCache(root=tmp_path / "serial")
    )
    assert serial.shards["width"] == 1
    assert "shards" not in serial.record_for("ranged")
    pooled = run_tasks(
        _registry(), jobs=2, cache=ResultCache(root=tmp_path / "pooled")
    )
    assert pooled.shards["width"] == 2
    assert len(pooled.record_for("ranged")["shards"]) == 2
    assert canonical_json(_stable(serial)) == canonical_json(_stable(pooled))


def test_parallel_sharded_matches_serial_sharded(tmp_path, monkeypatch):
    _uncap_cpus(monkeypatch)
    serial = run_tasks(
        _registry(),
        jobs=1,
        shards=3,
        cache=ResultCache(root=tmp_path / "serial"),
    )
    pooled = run_tasks(
        _registry(),
        jobs=2,
        shards=3,
        cache=ResultCache(root=tmp_path / "pooled"),
    )
    assert canonical_json(_stable(serial)) == canonical_json(_stable(pooled))


def test_shards_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        run_tasks(
            _registry(), jobs=1, shards=0, cache=ResultCache(root=tmp_path)
        )


# -- caching: plain dep keys, plan-salted storage keys ------------------------


def test_width_change_reruns_only_shards_and_merge(tmp_path):
    cache = ResultCache(root=tmp_path)
    first = run_tasks(_registry(), jobs=1, shards=2, cache=cache)
    assert first.ok

    # Same width again: the merge record hits under its plan-salted key
    # and no shard executes at all.
    warm = run_tasks(_registry(), jobs=1, shards=2, cache=cache)
    assert warm.record_for("ranged")["cache"] == "hit"
    assert warm.shards["tasks"]["ranged"] == {
        "count": 2,
        "cache": "hit",
        "effective_width": 2,
        "clamped": False,
    }
    assert warm.record_for("doubled")["cache"] == "hit"

    # New width: a different plan salts different shard/merge keys, so
    # the task re-runs — but the dependent hashes the plain (unsalted)
    # key and must stay cached.
    wider = run_tasks(_registry(), jobs=1, shards=4, cache=cache)
    ranged = wider.record_for("ranged")
    assert ranged["cache"] == "miss"
    assert len(ranged["shards"]) == 4
    assert all(row["cache"] == "miss" for row in ranged["shards"])
    assert wider.record_for("doubled")["cache"] == "hit"
    assert canonical_json(_stable(first)) == canonical_json(_stable(wider))

    # Back to the first width: everything hits again.
    back = run_tasks(_registry(), jobs=1, shards=2, cache=cache)
    assert back.record_for("ranged")["cache"] == "hit"


def test_shard_records_cache_individually(tmp_path):
    from repro.engine.shards import round_robin

    cache = ResultCache(root=tmp_path)
    run_tasks(_registry(), jobs=1, shards=3, cache=cache)
    # Drop only the merge record; the shards themselves must hit and
    # only the merge re-executes.
    spec = _registry().get("ranged")
    plan_descriptors = [
        {"values": lane} for lane in round_robin(list(range(10)), 3)
    ]
    storage_key = cache.key_for(
        spec, {}, extra=canonical_json({"plan": plan_descriptors})
    )
    cache.path_for(storage_key).unlink()
    rerun = run_tasks(_registry(), jobs=1, shards=3, cache=cache)
    record = rerun.record_for("ranged")
    assert record["cache"] == "miss"  # the merge itself re-ran
    assert [row["cache"] for row in record["shards"]] == ["hit"] * 3


def test_version_bump_invalidates_shards_and_dependents(tmp_path):
    cache = ResultCache(root=tmp_path)
    run_tasks(_registry(), jobs=1, shards=2, cache=cache)
    bumped = TaskRegistry()
    bumped.add(
        "ranged",
        f"{TASKFNS}:range_sum",
        args={"n": 10},
        shards=RANGE_PLAN,
        version="2",
    )
    bumped.add("doubled", f"{TASKFNS}:double_total", deps={"part": "ranged"})
    bumped.add("loner", f"{TASKFNS}:const", args={"value": "solo"})
    report = run_tasks(bumped, jobs=1, shards=2, cache=cache)
    ranged = report.record_for("ranged")
    assert ranged["cache"] == "miss"
    assert all(row["cache"] == "miss" for row in ranged["shards"])
    assert report.record_for("doubled")["cache"] == "miss"
    assert report.record_for("loner")["cache"] == "hit"


# -- failure isolation ---------------------------------------------------------


def test_shard_failure_fails_task_and_skips_dependents(tmp_path):
    registry = TaskRegistry()
    registry.add(
        "ranged",
        f"{TASKFNS}:range_sum",
        args={"n": 10},
        shards=ShardPlan(
            f"{TASKFNS}:plan_range",
            f"{TASKFNS}:shard_boom",
            f"{TASKFNS}:range_merge",
        ),
    )
    registry.add("doubled", f"{TASKFNS}:double_total", deps={"part": "ranged"})
    registry.add("unrelated", f"{TASKFNS}:const", args={"value": 7})
    report = run_tasks(
        registry, jobs=1, shards=2, cache=ResultCache(root=tmp_path)
    )
    assert report.counts() == {"ok": 1, "error": 1, "skipped": 1}
    failed = report.record_for("ranged")
    assert failed["error"]["type"] == "ShardFailure"
    assert "shard exploded" in failed["error"]["message"]
    # Attribution still records every shard, including the survivors.
    statuses = {row["index"]: row["status"] for row in failed["shards"]}
    assert statuses == {0: "ok", 1: "error"}
    assert report.record_for("doubled")["status"] == "skipped"
    assert report.record_for("unrelated")["result"] == 7
    # A failed shard set is not cached: the task re-runs from scratch.
    rerun = run_tasks(
        registry, jobs=1, shards=2, cache=ResultCache(root=tmp_path)
    )
    assert rerun.record_for("ranged")["error"]["type"] == "ShardFailure"


def test_planner_failure_is_a_task_error(tmp_path):
    registry = TaskRegistry()
    registry.add(
        "ranged",
        f"{TASKFNS}:range_sum",
        args={"n": 10},
        shards=ShardPlan(
            f"{TASKFNS}:plan_boom",
            f"{TASKFNS}:range_part",
            f"{TASKFNS}:range_merge",
        ),
    )
    registry.add("doubled", f"{TASKFNS}:double_total", deps={"part": "ranged"})
    report = run_tasks(
        registry, jobs=1, shards=2, cache=ResultCache(root=tmp_path)
    )
    failed = report.record_for("ranged")
    assert failed["status"] == "error"
    assert "shard planner failed" in failed["error"]["message"]
    assert report.record_for("doubled")["status"] == "skipped"


# -- spec validation -----------------------------------------------------------


def test_reserved_parameters_rejected_for_sharded_specs():
    with pytest.raises(ValueError, match="reserved for shard execution"):
        TaskSpec(
            "bad",
            f"{TASKFNS}:range_sum",
            args={"shard": 1},
            shards=RANGE_PLAN,
        )
    with pytest.raises(ValueError, match="reserved for shard execution"):
        TaskSpec(
            "bad",
            f"{TASKFNS}:range_sum",
            deps={"shards": "other"},
            shards=RANGE_PLAN,
        )
    # Without a shard plan the names are ordinary parameters.
    TaskSpec("fine", f"{TASKFNS}:const", args={"shard": 1})


def test_fn_paths_include_shard_plan_functions():
    registry = _registry()
    paths = registry.fn_paths()
    for path in RANGE_PLAN.paths():
        assert path in paths


# -- counter conservation over a real experiment -------------------------------


def test_e01_shard_counters_conserve_exactly(tmp_path):
    """Σ(shard solver deltas) + merge delta == the monolithic delta.

    E01's plan round-robins the i-grid, so no work is duplicated at all:
    every real solver counter must match exactly and the overhead
    counter must stay zero.  All lru caches are cleared between runs so
    both widths do identical cold work in this process.
    """
    from repro import cachestats
    from repro.engine.experiments import build_default_registry

    registry = build_default_registry()

    def run(width):
        cachestats.clear_all()
        return run_tasks(
            registry,
            jobs=1,
            shards=width,
            cache=ResultCache(root=tmp_path, enabled=False),
            only=["E01"],
        ).record_for("E01")

    mono = run(1)
    sharded = run(3)
    assert mono["status"] == "ok" and sharded["status"] == "ok"
    assert canonical_json(mono["result"]) == canonical_json(sharded["result"])
    assert len(sharded["shards"]) == 3
    def real(delta):
        return {k: v for k, v in delta.items() if k != "shard_overhead_ops"}

    assert real(sharded["solver_delta"]) == real(mono["solver_delta"])
    assert sharded["solver_delta"].get("shard_overhead_ops", 0) == 0


# -- spawn start method (satellite: REPRO_MP_CONTEXT) --------------------------


def test_spawn_pool_runs_the_dag(tmp_path, monkeypatch):
    """Workers started via spawn (fresh interpreters) must produce the
    same records: payloads carry only dotted paths and JSON data, and
    the store backend re-activates through the pool initializer."""
    _uncap_cpus(monkeypatch)
    monkeypatch.setenv("REPRO_MP_CONTEXT", "spawn")
    from repro.store import ArtifactStore, open_backend

    registry = _registry()
    registry.add(
        "interned",
        f"{TASKFNS}:interned_probe",
        args={"word": "abbaabbaabba"},
    )
    store = ArtifactStore(open_backend(tmp_path / "store"))
    report = run_tasks(
        registry,
        jobs=2,
        shards=2,
        cache=ResultCache(root=tmp_path / "cache"),
        store=store,
    )
    assert report.ok
    assert report.record_for("ranged")["result"]["total"] == 45
    assert report.record_for("doubled")["result"] == 90
    monkeypatch.delenv("REPRO_MP_CONTEXT")
    serial = run_tasks(
        registry,
        jobs=1,
        shards=2,
        cache=ResultCache(root=tmp_path / "serial"),
    )
    assert canonical_json(_stable(serial)) == canonical_json(_stable(report))


def test_sqlite_backend_pickles_without_live_connection(tmp_path):
    import pickle

    from repro.store.backends import SqliteBackend

    backend = SqliteBackend(tmp_path / "artifacts.sqlite")
    backend.put("aa", b"payload")  # opens the connection
    clone = pickle.loads(pickle.dumps(backend))
    assert clone._conn is None and clone._pid == -1
    assert clone.get("aa") == b"payload"
    backend.close()
    clone.close()
