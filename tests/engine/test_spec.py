"""resolve_function hardening: clear errors that name the failing task."""

import pytest

from repro.engine.spec import TaskSpec, resolve_function


def test_resolves_colon_and_dot_paths():
    assert resolve_function("tests.engine.taskfns:double")(3) == 6
    assert resolve_function("tests.engine.taskfns.double")(3) == 6


def test_malformed_path_is_value_error():
    with pytest.raises(ValueError, match="not a dotted function path"):
        resolve_function("justaname")
    with pytest.raises(ValueError, match="not a dotted function path"):
        resolve_function("tests.engine.taskfns:")


def test_missing_attribute_is_value_error():
    with pytest.raises(ValueError, match="no attribute 'nope'"):
        resolve_function("tests.engine.taskfns:nope")


def test_non_callable_is_value_error():
    with pytest.raises(ValueError, match="non-callable int"):
        resolve_function("tests.engine.taskfns:NOT_CALLABLE")


def test_bound_method_is_value_error():
    with pytest.raises(ValueError, match="bound method of _Holder"):
        resolve_function("tests.engine.taskfns:bound_method")


def test_error_names_the_task():
    spec = TaskSpec("E99", "tests.engine.taskfns:NOT_CALLABLE")
    with pytest.raises(ValueError, match="task 'E99':"):
        spec.resolve()
