"""The bench-smoke regression gate: comparison logic, not the full run.

(The full run is exercised by CI itself; here we pin down what counts as
a regression so the gate can't silently rot.)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.bench_smoke import (  # noqa: E402
    GATED_COUNTERS,
    LRU_GATES,
    check,
    check_lru,
)


class _Report:
    def __init__(self, records, shards=None):
        self.records = records
        # The real EngineReport always carries a shard summary; the
        # default here mimics a run where some task executed sharded.
        self.shards = (
            shards
            if shards is not None
            else {"width": 2, "tasks": {"E01": {"count": 2}}}
        )


def _record(task, status="ok", **counters):
    return {"task": task, "status": status, "solver_delta": dict(counters)}


BASELINE = {
    "counters": {
        "E01": {"positions_explored": 100},
        "E05": {
            "sweep_words_interned": 9841,
            "sweep_tables_extended": 9840,
            "sweep_tables_rebuilt": 1,
        },
        "E20": {"foeq_positions_explored": 500},
        "prim": {},
    }
}


def _ok_records():
    return [
        _record("E01", positions_explored=100),
        _record(
            "E05",
            sweep_words_interned=9841,
            sweep_tables_extended=9840,
            sweep_tables_rebuilt=1,
        ),
        _record("E20", foeq_positions_explored=500),
        _record("prim"),
    ]


def test_matching_run_passes():
    assert check(_Report(_ok_records()), BASELINE, tolerance=0.2) == []


def test_within_tolerance_passes():
    records = _ok_records()
    records[0] = _record("E01", positions_explored=119)
    assert check(_Report(records), BASELINE, tolerance=0.2) == []


def test_regression_beyond_tolerance_fails():
    records = _ok_records()
    records[0] = _record("E01", positions_explored=121)
    failures = check(_Report(records), BASELINE, tolerance=0.2)
    assert len(failures) == 1
    assert "E01" in failures[0] and "regressed" in failures[0]


def test_sweep_counter_regression_fails():
    # A rebuild where an extension should happen (broken prefix sharing)
    # shows up as sweep_tables_rebuilt growing from its baseline.
    records = _ok_records()
    records[1] = _record(
        "E05",
        sweep_words_interned=9841,
        sweep_tables_extended=8000,
        sweep_tables_rebuilt=1841,
    )
    failures = check(_Report(records), BASELINE, tolerance=0.2)
    assert any("sweep_tables_rebuilt" in f for f in failures)


def test_foeq_counter_regression_fails():
    records = _ok_records()
    records[2] = _record("E20", foeq_positions_explored=1000)
    failures = check(_Report(records), BASELINE, tolerance=0.2)
    assert any("foeq_positions_explored" in f for f in failures)


def test_task_error_fails_even_without_effort_change():
    records = _ok_records()
    records[0] = _record("E01", status="error", positions_explored=100)
    failures = check(_Report(records), BASELINE, tolerance=0.2)
    assert any("did not finish ok" in f for f in failures)


def test_new_solver_work_on_zero_baseline_fails():
    records = _ok_records()
    records[3] = _record("prim", positions_explored=7)
    failures = check(_Report(records), BASELINE, tolerance=0.2)
    assert any("prim" in f for f in failures)


def test_run_without_sharded_tasks_fails():
    # Sharding silently disabled (e.g. every planner degenerating to one
    # descriptor) would un-gate the shard/merge path.
    report = _Report(_ok_records(), shards={"width": 2, "tasks": {}})
    failures = check(report, BASELINE, tolerance=0.2)
    assert any("shard plan" in f for f in failures)


def test_unbaselined_task_fails_loudly():
    report = _Report([_record("E99", positions_explored=5)])
    failures = check(report, BASELINE, tolerance=0.2)
    assert any("no baseline entry" in f for f in failures)


def test_improvement_passes():
    records = _ok_records()
    records[0] = _record("E01", positions_explored=10)
    assert check(_Report(records), BASELINE, tolerance=0.2) == []


def test_every_gated_counter_is_checked():
    # Guard the gate itself: all advertised counters really participate.
    for name in GATED_COUNTERS:
        baseline = {"counters": {"T": {name: 100}}}
        report = _Report([_record("T", **{name: 200})])
        failures = check(report, baseline, tolerance=0.2)
        assert any(name in f for f in failures), name


# --- the lru no-eviction gate -------------------------------------------


def _lru_snapshot(hits, misses, currsize, maxsize=4096):
    return {
        name: {
            "hits": hits,
            "misses": misses,
            "currsize": currsize,
            "maxsize": maxsize,
        }
        for name in LRU_GATES
    }


def test_lru_no_eviction_passes():
    assert check_lru(_lru_snapshot(hits=50, misses=200, currsize=200)) == []


def test_lru_eviction_fails():
    failures = check_lru(_lru_snapshot(hits=29, misses=2087, currsize=512))
    assert any("evicted 1575" in f for f in failures)


def test_lru_zero_hits_fails():
    failures = check_lru(_lru_snapshot(hits=0, misses=10, currsize=10))
    assert any("no longer shares work" in f for f in failures)


def test_lru_unregistered_cache_fails():
    failures = check_lru({})
    assert any("not registered" in f for f in failures)


def test_match_spans_cache_is_gated():
    from repro.spanners.regex_formulas import _match_spans_cached

    assert "spanners.regex_formulas.match_spans" in LRU_GATES
    # The smoke subset doesn't drive spanner evaluation, so the gate is
    # registration + no-eviction only (min_hits 0).
    assert LRU_GATES["spanners.regex_formulas.match_spans"] == 0
    assert _match_spans_cached.cache_info().maxsize == 4096


def test_match_spans_zero_hits_passes_but_eviction_fails():
    snapshot = _lru_snapshot(hits=1, misses=10, currsize=10)
    spans = snapshot["spanners.regex_formulas.match_spans"]
    spans["hits"] = 0
    assert check_lru(snapshot) == []
    spans["misses"] = spans["currsize"] + 3
    failures = check_lru(snapshot)
    assert any(
        "match_spans evicted 3" in failure for failure in failures
    )


def test_solver_for_cache_holds_the_engine_workload():
    # The maxsize-512 regression: the full DAG requests ~2 000 distinct
    # (w, v, alphabet) pairs, and at 512 the heavyweight solvers were
    # evicted and rebuilt (2 087 misses vs 29 hits).  Pin the size above
    # the workload so the no-eviction regime can't silently regress.
    from repro.ef.equivalence import solver_for

    assert solver_for.cache_info().maxsize >= 4096
    assert "ef.equivalence.solver_for" in LRU_GATES
