"""The bench-smoke regression gate: comparison logic, not the full run.

(The full run is exercised by CI itself; here we pin down what counts as
a regression so the gate can't silently rot.)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from benchmarks.bench_smoke import check  # noqa: E402


class _Report:
    def __init__(self, records):
        self.records = records


def _record(task, positions, status="ok"):
    return {
        "task": task,
        "status": status,
        "solver_delta": (
            {"positions_explored": positions} if positions else {}
        ),
    }


BASELINE = {"positions_explored": {"E01": 100, "E02": 1000, "prim": 0}}


def test_matching_run_passes():
    report = _Report(
        [_record("E01", 100), _record("E02", 1000), _record("prim", 0)]
    )
    assert check(report, BASELINE, tolerance=0.2) == []


def test_within_tolerance_passes():
    report = _Report(
        [_record("E01", 119), _record("E02", 1000), _record("prim", 0)]
    )
    assert check(report, BASELINE, tolerance=0.2) == []


def test_regression_beyond_tolerance_fails():
    report = _Report(
        [_record("E01", 121), _record("E02", 1000), _record("prim", 0)]
    )
    failures = check(report, BASELINE, tolerance=0.2)
    assert len(failures) == 1
    assert "E01" in failures[0] and "regressed" in failures[0]


def test_task_error_fails_even_without_effort_change():
    report = _Report(
        [
            _record("E01", 100, status="error"),
            _record("E02", 1000),
            _record("prim", 0),
        ]
    )
    failures = check(report, BASELINE, tolerance=0.2)
    assert any("did not finish ok" in f for f in failures)


def test_new_solver_work_on_zero_baseline_fails():
    report = _Report(
        [_record("E01", 100), _record("E02", 1000), _record("prim", 7)]
    )
    failures = check(report, BASELINE, tolerance=0.2)
    assert any("prim" in f for f in failures)


def test_unbaselined_task_fails_loudly():
    report = _Report([_record("E99", 5)])
    failures = check(report, BASELINE, tolerance=0.2)
    assert any("no baseline entry" in f for f in failures)


def test_improvement_passes():
    report = _Report(
        [_record("E01", 10), _record("E02", 1000), _record("prim", 0)]
    )
    assert check(report, BASELINE, tolerance=0.2) == []
