"""Executor ↔ artifact-store integration: activation scope, deltas, totals."""

import pytest

from repro.engine import ResultCache, TaskRegistry, run_tasks
from repro.kernel.interning import intern_table
from repro.store import runtime as store_runtime
from repro.store.backends import MemoryBackend, SqliteBackend
from repro.store.core import ArtifactStore

TASKFNS = "tests.engine.taskfns"

#: Crosses the interning hydration threshold (12 chars).
LONG_WORD = "aabbab" * 2


@pytest.fixture(autouse=True)
def fresh_kernel_caches():
    intern_table.cache_clear()
    yield
    intern_table.cache_clear()


def _registry() -> TaskRegistry:
    registry = TaskRegistry()
    registry.add(
        "interned", f"{TASKFNS}:interned_probe", args={"word": LONG_WORD}
    )
    registry.add("plain", f"{TASKFNS}:const", args={"value": 5})
    return registry


def _no_cache() -> ResultCache:
    return ResultCache(enabled=False)


class TestReportShape:
    def test_store_disabled_by_default(self):
        report = run_tasks(_registry(), cache=_no_cache())
        assert report.store == {
            "enabled": False,
            "backend": None,
            "totals": {},
        }
        assert report.to_json_dict()["store"]["enabled"] is False

    def test_store_section_and_per_record_deltas(self):
        store = ArtifactStore(MemoryBackend())
        report = run_tasks(_registry(), cache=_no_cache(), store=store)
        assert report.store["enabled"] is True
        assert report.store["backend"]["backend"] == "memory"
        totals = report.store["totals"]
        assert totals.get("store_stores", 0) >= 1  # intern universe published
        interned = report.record_for("interned")
        assert interned["store_delta"].get("store_stores", 0) >= 1
        # A task that never touches the kernel has an empty delta.
        assert report.record_for("plain")["store_delta"] == {}

    def test_totals_are_the_sum_of_record_deltas(self):
        store = ArtifactStore(MemoryBackend())
        report = run_tasks(_registry(), cache=_no_cache(), store=store)
        summed: dict[str, int] = {}
        for record in report.records:
            for counter, amount in record["store_delta"].items():
                summed[counter] = summed.get(counter, 0) + amount
        assert report.store["totals"] == summed


class TestActivationScope:
    def test_global_store_is_restored_after_the_run(self):
        sentinel = ArtifactStore(MemoryBackend())
        previous = store_runtime.activate(sentinel)
        try:
            run_tasks(
                _registry(),
                cache=_no_cache(),
                store=ArtifactStore(MemoryBackend()),
            )
            assert store_runtime.active() is sentinel
        finally:
            store_runtime.deactivate(previous)

    def test_no_store_leaves_global_untouched(self):
        previous = store_runtime.activate(None)
        try:
            run_tasks(_registry(), cache=_no_cache())
            assert store_runtime.active() is None
        finally:
            store_runtime.deactivate(previous)


class TestWarmStart:
    def test_second_run_hydrates_from_the_first(self, tmp_path):
        store = ArtifactStore(
            SqliteBackend(tmp_path / "artifacts.sqlite")
        )
        cold = run_tasks(_registry(), cache=_no_cache(), store=store)
        assert cold.store["totals"].get("store_stores", 0) >= 1
        intern_table.cache_clear()
        warm = run_tasks(_registry(), cache=_no_cache(), store=store)
        assert warm.store["totals"].get("store_hits", 0) >= 1
        assert warm.store["totals"].get("store_stores", 0) == 0
        assert warm.record_for("interned")["result"] == cold.record_for(
            "interned"
        )["result"]

    def test_cache_hit_records_have_empty_store_deltas(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        store = ArtifactStore(MemoryBackend())
        run_tasks(_registry(), cache=cache, store=store)
        intern_table.cache_clear()
        second = run_tasks(_registry(), cache=cache, store=store)
        interned = second.record_for("interned")
        assert interned["cache"] == "hit"
        assert interned["store_delta"] == {}
        assert second.store["totals"] == {}


class TestPooledWorkers:
    def test_worker_deltas_flow_back_through_records(self, tmp_path):
        # Forked workers inherit the activated store; their per-task
        # store counters must come back in the records even though the
        # workers' global counters die with the pool.
        store = ArtifactStore(
            SqliteBackend(tmp_path / "artifacts.sqlite")
        )
        registry = TaskRegistry()
        registry.add(
            "interned-a",
            f"{TASKFNS}:interned_probe",
            args={"word": LONG_WORD},
        )
        registry.add(
            "interned-b",
            f"{TASKFNS}:interned_probe",
            args={"word": "ababab" * 2},
        )
        report = run_tasks(
            registry, jobs=2, cache=_no_cache(), store=store
        )
        assert report.ok
        totals = report.store["totals"]
        assert totals.get("store_stores", 0) >= 2
        for name in ("interned-a", "interned-b"):
            delta = report.record_for(name)["store_delta"]
            assert delta.get("store_stores", 0) >= 1
