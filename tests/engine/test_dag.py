"""DAG validation, deterministic topological order, and closures."""

import pytest

from repro.engine import (
    DependencyCycleError,
    MissingDependencyError,
    TaskRegistry,
    TaskSpec,
    topological_order,
    validate_dag,
)
from repro.engine.dag import dependents_of

FN = "tests.engine.taskfns:const"


def _diamond():
    return {
        "root": TaskSpec("root", FN, {"value": 0}),
        "left": TaskSpec("left", FN, deps={"value": "root"}),
        "right": TaskSpec("right", FN, deps={"value": "root"}),
        "sink": TaskSpec(
            "sink", "tests.engine.taskfns:combine",
            deps={"left": "left", "right": "right"},
        ),
    }


def test_topological_order_respects_dependencies():
    order = topological_order(_diamond())
    position = {name: i for i, name in enumerate(order)}
    assert position["root"] < position["left"]
    assert position["root"] < position["right"]
    assert position["left"] < position["sink"]
    assert position["right"] < position["sink"]


def test_topological_order_is_deterministic():
    specs = _diamond()
    shuffled = dict(reversed(list(specs.items())))
    assert topological_order(specs) == topological_order(shuffled)
    # Ready tasks come out sorted, so the diamond has exactly one order.
    assert topological_order(specs) == ["root", "left", "right", "sink"]


def test_missing_dependency_is_rejected():
    specs = {"a": TaskSpec("a", FN, deps={"value": "ghost"})}
    with pytest.raises(MissingDependencyError):
        validate_dag(specs)


def test_cycle_is_rejected():
    specs = {
        "a": TaskSpec("a", FN, deps={"value": "b"}),
        "b": TaskSpec("b", FN, deps={"value": "a"}),
    }
    with pytest.raises(DependencyCycleError):
        topological_order(specs)
    with pytest.raises(DependencyCycleError):
        validate_dag({"a": TaskSpec("a", FN, deps={"value": "a"})})


def test_dependents_reverse_edges():
    reverse = dependents_of(_diamond())
    assert reverse["root"] == {"left", "right"}
    assert reverse["sink"] == set()


def test_registry_closure_pulls_transitive_deps():
    registry = TaskRegistry(iter(_diamond().values()))
    assert set(registry.closure(["sink"])) == {"root", "left", "right", "sink"}
    assert set(registry.closure(["left"])) == {"root", "left"}


def test_registry_rejects_duplicates_and_arg_dep_overlap():
    registry = TaskRegistry()
    registry.add("a", FN, args={"value": 1})
    with pytest.raises(ValueError, match="duplicate"):
        registry.add("a", FN)
    with pytest.raises(ValueError, match="both"):
        TaskSpec("bad", FN, args={"value": 1}, deps={"value": "a"})
