"""The ``python -m repro run`` command, driven in-process."""

import json

import pytest

from repro.__main__ import main


def test_run_only_e01_writes_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = main(
        [
            "run",
            "--only", "E01",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(report_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "E01" in out and "1 ok" in out

    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["engine"]["jobs"] == 1
    assert payload["engine"]["tasks"] == {"ok": 1, "error": 0, "skipped": 0}
    assert payload["tasks"][0]["task"] == "E01"
    assert payload["tasks"][0]["result"]["passed"] is True
    assert "hits" in payload["cache"] and "misses" in payload["cache"]
    assert "registered" in payload["lru_caches"]


def test_run_warm_cache_hits(tmp_path, capsys):
    args = [
        "run",
        "--only", "E01",
        "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / "report.json"),
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "[hit] cached" in capsys.readouterr().out
    payload = json.loads((tmp_path / "report.json").read_text())
    assert payload["cache"]["hits"] == 1


def test_run_no_cache(tmp_path, capsys):
    code = main(
        [
            "run",
            "--only", "E01",
            "--jobs", "1",
            "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "report.json"),
        ]
    )
    assert code == 0
    payload = json.loads((tmp_path / "report.json").read_text())
    assert payload["cache"]["bypassed"] >= 1
    assert payload["tasks"][0]["cache"] == "bypass"
    assert not any((tmp_path / "cache").rglob("*.json"))


def test_run_only_is_case_insensitive_for_experiments(tmp_path):
    code = main(
        [
            "run",
            "--only", "e01",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "report.json"),
        ]
    )
    assert code == 0


def test_run_unknown_only_exits(tmp_path):
    with pytest.raises(SystemExit, match="unknown task"):
        main(["run", "--only", "E99", "--cache-dir", str(tmp_path)])


def test_run_list(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("E01", "E23", "prim/pow2-pairs", "prim/witness/anbn"):
        assert name in out
    # Dependency edges are rendered.
    assert "←" in out
