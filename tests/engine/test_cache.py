"""Cache round-trip, key sensitivity, and invalidation semantics."""

import json

import pytest

from repro.engine import ENGINE_SALT, ResultCache, TaskSpec

FN = "tests.engine.taskfns:const"


def _spec(**overrides):
    defaults = {"name": "t", "fn": FN, "args": {"value": 1}}
    defaults.update(overrides)
    return TaskSpec(**defaults)


def test_key_is_stable():
    cache = ResultCache(root="unused")
    assert cache.key_for(_spec()) == cache.key_for(_spec())


@pytest.mark.parametrize(
    "changed",
    [
        {"args": {"value": 2}},
        {"name": "other"},
        {"version": "2"},
    ],
)
def test_key_changes_with_inputs(changed):
    cache = ResultCache(root="unused")
    assert cache.key_for(_spec()) != cache.key_for(_spec(**changed))


def test_key_changes_with_salt_and_dep_keys():
    base = ResultCache(root="unused")
    salted = ResultCache(root="unused", salt=ENGINE_SALT + "-bumped")
    spec = _spec()
    assert base.key_for(spec) != salted.key_for(spec)
    assert base.key_for(spec) != base.key_for(spec, {"param": "abc123"})
    assert base.key_for(spec, {"param": "abc123"}) != base.key_for(
        spec, {"param": "def456"}
    )


def test_description_does_not_affect_key():
    cache = ResultCache(root="unused")
    assert cache.key_for(_spec()) == cache.key_for(
        _spec(description="cosmetic")
    )


def test_store_load_round_trip(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = _spec()
    key = cache.key_for(spec)
    record = {"task": "t", "status": "ok", "result": {"value": 1}}

    assert cache.load(key) is None  # cold
    cache.store(key, record)
    loaded = cache.load(key)

    assert loaded is not None
    assert loaded["result"] == {"value": 1}
    assert loaded["key"] == key
    assert cache.stats.as_dict() == {
        "hits": 1,
        "misses": 1,
        "stores": 1,
        "bypassed": 0,
        "errors": 0,
        "hit_rate": 0.5,
    }


def test_version_bump_invalidates(tmp_path):
    cache = ResultCache(root=tmp_path)
    cache.store(cache.key_for(_spec()), {"status": "ok", "result": 1})
    assert cache.load(cache.key_for(_spec(version="2"))) is None
    assert cache.load(cache.key_for(_spec())) is not None


def test_corrupt_record_is_a_counted_miss(tmp_path):
    cache = ResultCache(root=tmp_path)
    key = cache.key_for(_spec())
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json", encoding="utf-8")
    assert cache.load(key) is None
    # A record whose embedded key mismatches is rejected too.
    path.write_text(json.dumps({"key": "wrong", "status": "ok"}))
    assert cache.load(key) is None
    assert cache.stats.errors == 2
    assert cache.stats.misses == 2


def test_disabled_cache_bypasses(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=False)
    key = cache.key_for(_spec())
    cache.store(key, {"status": "ok", "result": 1})
    assert cache.load(key) is None
    assert not any(tmp_path.rglob("*.json"))
    assert cache.stats.bypassed == 1
    assert cache.stats.stores == 0


def test_clear_removes_all_records(tmp_path):
    cache = ResultCache(root=tmp_path)
    for value in range(3):
        spec = _spec(args={"value": value})
        cache.store(cache.key_for(spec), {"status": "ok", "result": value})
    assert cache.clear() == 3
    assert cache.load(cache.key_for(_spec(args={"value": 0}))) is None


def test_paths_are_sharded(tmp_path):
    cache = ResultCache(root=tmp_path)
    key = cache.key_for(_spec())
    assert cache.path_for(key) == tmp_path / key[:2] / f"{key}.json"
