"""Tiny module-level task functions for the engine tests.

They live in an importable module (not a test file) because the engine
resolves tasks from dotted paths — including inside worker processes.
"""

from __future__ import annotations

from typing import Any


def const(value: Any) -> Any:
    return value


def double(n: int) -> int:
    return 2 * n


def add(x: int, y: int) -> int:
    return x + y


def combine(left: Any, right: Any) -> dict[str, Any]:
    return {"left": left, "right": right}


def tupled() -> Any:
    # Tuples and int dict keys only exist pre-roundtrip; the engine must
    # normalise them to their JSON image (lists / string keys).
    return {"pair": (1, 2), "table": {3: "c"}}


def factor_count(word: str) -> int:
    # Lazy import on purpose: mirrors the real experiment tasks, whose
    # instrumented caches are only touched inside the executing process.
    from repro.words.factors import factors

    return len(factors(word))


def ef_probe(w: str, v: str, k: int) -> bool:
    from repro.ef.equivalence import solver_for

    return solver_for(w, v, "ab").duplicator_wins(k)


def interned_probe(word: str) -> int:
    # Long enough to cross the store hydration threshold, so a run with
    # an active artifact store records store deltas for this task.
    from repro.kernel.interning import intern_table

    table = intern_table(word, ("a", "b"))
    return table.n_factors


def boom() -> None:
    raise RuntimeError("intentional failure")


# -- sharded tasks -----------------------------------------------------------
#
# range_sum is the monolithic reference; (plan_range, range_part,
# range_merge) is its shard plan.  The merge must be bit-identical to the
# monolithic result for every width — that contract is what the sharding
# tests gate.


def range_sum(n: int) -> dict[str, Any]:
    values = list(range(n))
    return {"n": n, "total": sum(values), "values": values}


def plan_range(n: int, *, width: int) -> list[dict[str, Any]]:
    from repro.engine.shards import round_robin

    return [{"values": lane} for lane in round_robin(list(range(n)), width)]


def range_part(n: int, *, shard: dict[str, Any]) -> dict[str, Any]:
    values = list(shard["values"])
    return {"total": sum(values), "values": values}


def range_merge(n: int, *, shards: list[dict[str, Any]]) -> dict[str, Any]:
    values = sorted(v for part in shards for v in part["values"])
    return {"n": n, "total": sum(values), "values": values}


def double_total(part: dict[str, Any]) -> int:
    return 2 * part["total"]


def shard_boom(n: int, *, shard: dict[str, Any]) -> dict[str, Any]:
    # Round-robin puts value 1 on lane 1, so exactly one shard fails at
    # width >= 2 while its siblings succeed.
    if 1 in shard["values"]:
        raise RuntimeError("shard exploded")
    return {"total": sum(shard["values"]), "values": list(shard["values"])}


def plan_boom(n: int, *, width: int) -> list[dict[str, Any]]:
    raise RuntimeError("planner exploded")


def not_json() -> Any:
    return {1, 2, 3}


#: Resolution-failure targets for the spec tests: resolve_function must
#: reject non-callables and bound methods by name.
NOT_CALLABLE = 42


class _Holder:
    def method(self) -> None:  # pragma: no cover - never called
        return None


HOLDER = _Holder()
bound_method = HOLDER.method
