"""The shared lru_cache instrumentation registry."""

import importlib
from functools import lru_cache

import pytest

from repro.engine import cachestats


@pytest.fixture
def scoped_cache():
    """A registered lru_cache that is unregistered again afterwards."""

    @lru_cache(maxsize=8)
    def square(n: int) -> int:
        return n * n

    name = "tests.square"
    cachestats.register(name, square)
    yield name, square
    cachestats._REGISTRY.pop(name, None)


def test_snapshot_and_diff(scoped_cache):
    name, square = scoped_cache
    square.cache_clear()
    before = cachestats.snapshot()
    square(2)
    square(2)
    square(3)
    delta = cachestats.diff(before, cachestats.snapshot())
    assert delta[name] == {"hits": 1, "misses": 2, "currsize": 2}


def test_diff_omits_inactive_caches(scoped_cache):
    name, square = scoped_cache
    before = cachestats.snapshot()
    assert name not in cachestats.diff(before, cachestats.snapshot())


def test_register_is_idempotent_for_same_fn(scoped_cache):
    name, square = scoped_cache
    cachestats.register(name, square)  # same function: fine

    @lru_cache(maxsize=2)
    def other(n: int) -> int:
        return n

    with pytest.raises(ValueError, match="already registered"):
        cachestats.register(name, other)


def test_register_requires_cache_info():
    with pytest.raises(TypeError):
        cachestats.register("tests.plain", lambda n: n)


def test_aggregate_totals(scoped_cache):
    name, square = scoped_cache
    square.cache_clear()
    square(5)
    square(5)
    totals = cachestats.aggregate()
    assert totals["hits"] >= 1
    assert totals["misses"] >= 1


INSTRUMENTED_MODULES = (
    "repro.ef.equivalence",
    "repro.fc.structures",
    "repro.spanners.regex_formulas",
    "repro.words.factors",
    "repro.words.fibonacci",
)


def test_real_sites_are_registered():
    # Importing the instrumented modules registers their caches.
    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)

    names = set(cachestats.registered_names())
    assert {
        "ef.equivalence.solver_for",
        "fc.structures.word_structure",
        "words.factors.factors",
        "words.fibonacci.fibonacci_word",
        "spanners.regex_formulas.parse_regex_formula",
    } <= names
