"""Tests for the language oracles and combinatorial predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.words.generators import (
    PAPER_LANGUAGES,
    in_shuffle,
    is_permutation,
    is_scattered_subword,
    l1_an_ban,
    l2_ai_baj,
    l3_additive,
    l4_multiplicative,
    l5_coprimitive_blocks,
    l6_triple,
    l_anbn,
    l_pow2,
    shuffle_product,
    words_of_length,
    words_up_to,
)

short = st.text(alphabet="ab", max_size=6)


class TestEnumeration:
    def test_words_of_length(self):
        assert sorted(words_of_length("ab", 2)) == ["aa", "ab", "ba", "bb"]

    def test_words_up_to_count(self):
        assert sum(1 for _ in words_up_to("ab", 3)) == 1 + 2 + 4 + 8

    def test_unary(self):
        assert list(words_up_to("a", 2)) == ["", "a", "aa"]


class TestOracleMembership:
    @pytest.mark.parametrize("name", sorted(PAPER_LANGUAGES))
    def test_members_are_members(self, name):
        oracle = PAPER_LANGUAGES[name]
        for n in range(4):
            assert oracle.member(n) in oracle, (name, n)

    def test_anbn(self):
        assert "aabb" in l_anbn
        assert "" in l_anbn
        assert "aab" not in l_anbn
        assert "abab" not in l_anbn

    def test_l1(self):
        assert "" in l1_an_ban
        assert "aba" in l1_an_ban
        assert "aabab" not in l1_an_ban
        assert "aababa" in l1_an_ban

    def test_l2(self):
        assert "aba" in l2_ai_baj          # i = j = 1
        assert "ababa" in l2_ai_baj        # i = 1 ≤ j = 2
        assert "" not in l2_ai_baj         # needs i ≥ 1
        assert "aaba" not in l2_ai_baj     # i = 2 > j = 1

    def test_l3(self):
        assert "" in l3_additive            # n = m = 0
        assert "bab" + "b" in l3_additive   # n=1, m=1, tail bb
        assert "ab" in l3_additive          # n=0, m=1
        assert "abb" not in l3_additive

    def test_l4(self):
        assert "" in l4_multiplicative           # n=0, m=0: b^0 a^0 b^0
        assert "b" in l4_multiplicative          # n=1, m=0 → tail 0
        assert "bab" in l4_multiplicative        # 1·1 = 1
        assert "bbabb" in l4_multiplicative      # 2·1 = 2
        assert "babb" not in l4_multiplicative   # 1·1 ≠ 2

    def test_l5(self):
        assert "" in l5_coprimitive_blocks
        assert "abaabbbbaaba" in l5_coprimitive_blocks
        assert "abaabb" not in l5_coprimitive_blocks

    def test_l6(self):
        assert "" in l6_triple
        assert "abab" in l6_triple  # n=1: a b ab
        assert "aabbabab" in l6_triple  # n=2
        assert "aabab" not in l6_triple

    def test_pow2(self):
        assert "a" in l_pow2
        assert "aa" in l_pow2
        assert "aaa" not in l_pow2
        assert "aaaa" in l_pow2
        assert "" not in l_pow2

    @pytest.mark.parametrize("name", ["anbn", "L1", "L2", "L3", "L4", "L6"])
    def test_slices_are_complementary(self, name):
        oracle = PAPER_LANGUAGES[name]
        members, non_members = oracle.slice(6)
        assert members | non_members == frozenset(words_up_to("ab", 6))
        assert not (members & non_members)


class TestScatteredSubword:
    def test_paper_example(self):
        assert is_scattered_subword("aa", "abba")

    @given(short, short)
    def test_reflexive_on_prefixes(self, u, v):
        assert is_scattered_subword(u, u + v)
        assert is_scattered_subword(v, u + v)

    @given(short)
    def test_epsilon_always_scattered(self, w):
        assert is_scattered_subword("", w)

    def test_negative(self):
        assert not is_scattered_subword("ba", "aab")

    def test_length_constraint(self):
        assert not is_scattered_subword("aaa", "aa")


class TestShuffle:
    def test_paper_example(self):
        assert "ababaa" in shuffle_product("abba", "aa")

    def test_small_product(self):
        assert shuffle_product("a", "b") == {"ab", "ba"}

    @given(short, short)
    def test_in_shuffle_matches_product(self, x, y):
        product = shuffle_product(x, y)
        for z in product:
            assert in_shuffle(z, x, y)
        # and a wrong-length word never is
        assert not in_shuffle("a" * (len(x) + len(y) + 1), x, y)

    def test_in_shuffle_negative(self):
        assert not in_shuffle("ba", "a", "a")

    @given(short, short)
    def test_concatenations_always_shuffles(self, x, y):
        assert in_shuffle(x + y, x, y)
        assert in_shuffle(y + x, x, y)


class TestPermutation:
    def test_examples(self):
        assert is_permutation("ab", "ba")
        assert not is_permutation("aab", "abb")

    @given(short)
    def test_reverse_is_permutation(self, w):
        assert is_permutation(w, w[::-1])
