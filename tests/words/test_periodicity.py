"""Tests for periods, Fine–Wilf, commutation, the periodicity lemma."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.words.periodicity import (
    common_root,
    commute,
    fine_wilf_holds,
    fine_wilf_threshold,
    has_period,
    periodicity_lemma_predicts_conjugacy,
    periods,
    smallest_period,
)
from repro.words.primitivity import is_primitive, primitive_root

words = st.text(alphabet="ab", max_size=12)
nonempty = st.text(alphabet="ab", min_size=1, max_size=10)


class TestPeriods:
    def test_abab(self):
        assert periods("ababa") == [2, 4, 5]

    def test_full_length_always_a_period(self):
        assert has_period("abba", 4)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            has_period("ab", 0)

    @given(nonempty)
    def test_smallest_period_divides_for_powers(self, w):
        tripled = w * 3
        p = smallest_period(tripled)
        assert p <= len(w)
        assert has_period(tripled, p)

    @given(nonempty)
    def test_smallest_period_vs_primitive_root(self, w):
        # For w = z^k (z primitive), w has period |z|.
        root = primitive_root(w)
        assert has_period(w, len(root))


class TestFineWilf:
    def test_threshold(self):
        assert fine_wilf_threshold(4, 6) == 4 + 6 - 2

    @given(words, st.integers(1, 6), st.integers(1, 6))
    def test_fine_wilf_never_violated(self, w, p, q):
        assert fine_wilf_holds(w, p, q)

    def test_below_threshold_can_fail_gcd_period(self):
        # aabaa has periods 3 and 4 but not gcd = 1; length 5 < 3+4-1 = 6.
        w = "aabaa"
        assert has_period(w, 3) and has_period(w, 4)
        assert not has_period(w, 1)
        assert len(w) < fine_wilf_threshold(3, 4)


class TestCommutation:
    """Lothaire, Proposition 1.3.2 — the engine behind φ_{w*}."""

    def test_commuting_powers(self):
        assert commute("abab", "ab")
        assert common_root("abab", "ab") == "ab"

    def test_non_commuting(self):
        assert not commute("ab", "ba")
        assert common_root("ab", "ba") is None

    @given(nonempty, st.integers(0, 4), st.integers(0, 4))
    def test_powers_of_common_word_commute(self, z, i, j):
        assert commute(z * i, z * j)

    @given(nonempty, nonempty)
    def test_commutation_implies_common_root(self, u, v):
        if commute(u, v):
            root = common_root(u, v)
            assert root is not None
            assert u == root * (len(u) // len(root))
            assert v == root * (len(v) // len(root))

    def test_empty_pair(self):
        assert common_root("", "") == ""


class TestPeriodicityLemma:
    @given(
        nonempty.filter(is_primitive),
        nonempty.filter(is_primitive),
    )
    def test_implication_always_holds(self, w, v):
        assert periodicity_lemma_predicts_conjugacy(w, v)

    def test_requires_primitive(self):
        with pytest.raises(ValueError):
            periodicity_lemma_predicts_conjugacy("abab", "a")


class TestBorders:
    def test_borders_listing(self):
        from repro.words.periodicity import borders

        assert borders("abab") == ["", "ab"]
        assert borders("aaa") == ["", "a", "aa"]
        assert borders("ab") == [""]

    def test_longest_border(self):
        from repro.words.periodicity import longest_border

        assert longest_border("abab") == "ab"
        assert longest_border("ab") == ""
        assert longest_border("") == ""

    @given(nonempty)
    def test_border_period_duality(self, w):
        """smallest_period(w) = |w| − |longest_border(w)| — the classical
        duality, property-tested."""
        from repro.words.periodicity import longest_border, smallest_period

        assert smallest_period(w) == len(w) - len(longest_border(w))

    @given(nonempty)
    def test_borders_are_prefixes_and_suffixes(self, w):
        from repro.words.periodicity import borders

        for border in borders(w):
            assert w.startswith(border)
            assert w.endswith(border)
            assert len(border) < len(w)
