"""Tests for the word-equation engine."""

import pytest
from hypothesis import given, strategies as st

from repro.words.equations import (
    Equation,
    commutation_equation,
    conjugacy_equation,
    is_solution,
    solutions,
)
from repro.words.conjugacy import are_conjugate
from repro.words.periodicity import common_root

short = st.text(alphabet="ab", max_size=4)


class TestEquation:
    def test_parse(self):
        eq = Equation.parse("XY = YX")
        assert eq.lhs == ("X", "Y")
        assert eq.rhs == ("Y", "X")

    def test_parse_with_terminals(self):
        eq = Equation.parse("Xa = aX")
        assert eq.variables() == ("X",)

    def test_missing_equals(self):
        with pytest.raises(ValueError):
            Equation.parse("XY YX")

    def test_substitute(self):
        eq = Equation.parse("XbY = ab" + "a")
        left, right = eq.substitute({"X": "a", "Y": "a"})
        assert left == "aba"
        assert right == "aba"

    def test_variables_in_order(self):
        eq = Equation.parse("ZXY = XYZ")
        assert eq.variables() == ("Z", "X", "Y")


class TestSolutions:
    def test_commutation_matches_lothaire(self):
        """Solutions of XY = YX are exactly the common-root pairs —
        the same fact computed by the periodicity module."""
        eq = commutation_equation()
        found = {
            (sigma["X"], sigma["Y"]) for sigma in solutions(eq, "ab", 3)
        }
        from repro.words.generators import words_up_to

        expected = {
            (u, v)
            for u in words_up_to("ab", 3)
            for v in words_up_to("ab", 3)
            if common_root(u, v) is not None
        }
        assert found == expected

    def test_conjugacy_projects_to_conjugates(self):
        eq = conjugacy_equation()
        for sigma in solutions(eq, "ab", 3):
            if sigma["X"] and sigma["Y"]:
                assert are_conjugate(sigma["X"], sigma["Y"])

    def test_every_conjugate_pair_has_witness(self):
        eq = conjugacy_equation()
        found = {
            (sigma["X"], sigma["Y"])
            for sigma in solutions(eq, "ab", 3)
        }
        assert ("ab", "ba") in found
        assert ("aab", "aba") in found

    def test_ground_equation(self):
        eq = Equation.parse("ab = ab")
        assert list(solutions(eq, "ab", 1)) == [{}]

    def test_unsolvable(self):
        eq = Equation.parse("a = b")
        assert list(solutions(eq, "ab", 2)) == []

    @given(short, short)
    def test_is_solution_agrees_with_substitution(self, u, v):
        eq = commutation_equation()
        assert is_solution(eq, {"X": u, "Y": v}) == (u + v == v + u)
