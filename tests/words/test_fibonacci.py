"""Tests for Fibonacci words and L_fib (Proposition 4.1's language)."""

import pytest
from hypothesis import given, strategies as st

from repro.words.fibonacci import (
    contains_kth_power,
    fibonacci_word,
    fibonacci_words,
    is_fourth_power_free,
    is_l_fib,
    l_fib_members,
    l_fib_word,
)


class TestFibonacciWords:
    def test_base_cases(self):
        assert fibonacci_word(0) == "a"
        assert fibonacci_word(1) == "ab"

    def test_recursion(self):
        assert fibonacci_word(2) == "aba"
        assert fibonacci_word(3) == "abaab"
        assert fibonacci_word(4) == "abaababa"

    @given(st.integers(min_value=2, max_value=12))
    def test_recurrence(self, i):
        assert fibonacci_word(i) == fibonacci_word(i - 1) + fibonacci_word(i - 2)

    @given(st.integers(min_value=0, max_value=15))
    def test_lengths_are_fibonacci_numbers(self, i):
        fib = [1, 2]
        while len(fib) <= i:
            fib.append(fib[-1] + fib[-2])
        assert len(fibonacci_word(i)) == fib[i]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci_word(-1)

    def test_listing(self):
        assert fibonacci_words(3) == ["a", "ab", "aba"]


class TestLFib:
    def test_smallest_members(self):
        assert l_fib_word(0) == "cac"
        assert l_fib_word(1) == "cacabc"
        assert l_fib_word(2) == "cacabcabac"

    @given(st.integers(min_value=0, max_value=8))
    def test_membership_of_members(self, n):
        assert is_l_fib(l_fib_word(n))

    @pytest.mark.parametrize(
        "word",
        ["", "c", "cc", "cac" + "c", "cacab", "cacabcab", "cacabcbac",
         "cabcac", "cacabcabac" + "ab"],
    )
    def test_non_members(self, word):
        assert not is_l_fib(word)

    def test_members_up_to(self):
        members = l_fib_members(16)
        assert members == ["cac", "cacabc", "cacabcabac", "cacabcabacabaabc"]


class TestPowerFreeness:
    """Karhumäki: the Fibonacci word is 4th-power-free — the paper's
    reason FC has no classical pumping lemma."""

    @given(st.integers(min_value=0, max_value=13))
    def test_fibonacci_words_fourth_power_free(self, i):
        assert is_fourth_power_free(fibonacci_word(i))

    def test_fibonacci_words_do_contain_cubes(self):
        # 4 is tight: long Fibonacci words contain cubes.
        assert contains_kth_power(fibonacci_word(9), 3)

    def test_power_detection(self):
        assert contains_kth_power("aaaa", 4)
        assert contains_kth_power("ababab", 3)
        assert contains_kth_power("abaab", 2)  # contains aa
        assert not contains_kth_power("ab", 2)
        assert not contains_kth_power("aba", 2)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            contains_kth_power("ab", 0)
