"""Tests for repro.words.factors."""

import pytest
from hypothesis import given, strategies as st

from repro.words.factors import (
    common_factors,
    factor_count,
    factors,
    is_factor,
    is_prefix,
    is_strict_factor,
    is_strict_prefix,
    is_strict_suffix,
    is_suffix,
    iter_factors,
    longest_common_factor_length,
    occurrence_count,
    prefixes,
    suffixes,
)

words = st.text(alphabet="ab", max_size=12)


class TestFactors:
    def test_empty_word(self):
        assert factors("") == {""}

    def test_single_letter(self):
        assert factors("a") == {"", "a"}

    def test_paper_style_example(self):
        assert factors("aba") == {"", "a", "b", "ab", "ba", "aba"}

    def test_iter_yields_each_factor_once(self):
        listed = list(iter_factors("aabaa"))
        assert len(listed) == len(set(listed))

    def test_iter_ordered_by_length(self):
        lengths = [len(f) for f in iter_factors("abba")]
        assert lengths == sorted(lengths)

    @given(words)
    def test_every_factor_is_substring(self, w):
        assert all(f in w for f in factors(w))

    @given(words)
    def test_word_and_epsilon_are_factors(self, w):
        assert "" in factors(w)
        assert w in factors(w)

    @given(words, words)
    def test_factors_of_concatenation_contain_both(self, u, v):
        combined = factors(u + v)
        assert factors(u) <= combined
        assert factors(v) <= combined

    @given(words)
    def test_factor_count_bound(self, w):
        n = len(w)
        assert factor_count(w) <= n * (n + 1) // 2 + 1


class TestPrefixesSuffixes:
    def test_prefixes(self):
        assert prefixes("abc"[:2] + "a") == ["", "a", "ab", "aba"]

    def test_suffixes(self):
        assert suffixes("aba") == ["aba", "ba", "a", ""]

    @given(words)
    def test_prefix_suffix_counts(self, w):
        assert len(prefixes(w)) == len(w) + 1
        assert len(suffixes(w)) == len(w) + 1

    @given(words)
    def test_prefixes_are_factors(self, w):
        assert set(prefixes(w)) <= factors(w)

    def test_strict_variants(self):
        assert is_strict_prefix("a", "ab")
        assert not is_strict_prefix("ab", "ab")
        assert is_strict_suffix("b", "ab")
        assert not is_strict_suffix("ab", "ab")
        assert is_strict_factor("b", "ab")
        assert not is_strict_factor("ab", "ab")

    def test_predicates(self):
        assert is_factor("ba", "aba")
        assert not is_factor("bb", "aba")
        assert is_prefix("ab", "aba")
        assert is_suffix("ba", "aba")


class TestCommonFactors:
    def test_disjoint_alphabets_share_epsilon(self):
        assert common_factors("aaa", "bbb") == {""}

    def test_paper_example_a_and_ba(self):
        # Facs(a^m) ∩ Facs((ba)^n) = {ε, a} — the r=1 case of Prop 4.6.
        assert common_factors("aaaa", "bababa") == {"", "a"}

    @given(words, words)
    def test_lcf_matches_setwise_computation(self, u, v):
        expected = max(len(x) for x in common_factors(u, v))
        assert longest_common_factor_length(u, v) == expected

    def test_lcf_empty(self):
        assert longest_common_factor_length("", "abc"[:2]) == 0


class TestOccurrences:
    def test_overlapping(self):
        assert occurrence_count("aa", "aaaa") == 3

    def test_empty_factor(self):
        assert occurrence_count("", "abc"[:2]) == 3

    def test_letter_count_matches_paper_notation(self):
        # |w|_a for w = aabab
        assert occurrence_count("a", "aabab") == 3
        assert occurrence_count("b", "aabab") == 2


class TestFactorComplexity:
    def test_unary(self):
        from repro.words.factors import factor_complexity

        assert factor_complexity("aaaa") == [1, 1, 1, 1, 1]

    def test_small_binary(self):
        from repro.words.factors import factor_complexity

        assert factor_complexity("ab") == [1, 2, 1]

    def test_fibonacci_prefixes_are_sturmian(self):
        """The Fibonacci word is Sturmian: complexity n + 1 at every
        length (checked on the interior of a long finite prefix, where
        boundary effects don't truncate the factor set)."""
        from repro.words.factors import factor_complexity
        from repro.words.fibonacci import fibonacci_word

        w = fibonacci_word(12)
        complexity = factor_complexity(w)
        for n in range(1, 20):
            assert complexity[n] == n + 1

    def test_total_is_factor_count(self):
        from repro.words.factors import factor_complexity, factor_count

        word = "abbab"
        assert sum(factor_complexity(word)) == factor_count(word)
