"""Tests for word morphisms."""

import pytest
from hypothesis import given, strategies as st

from repro.words.morphisms import (
    PAPER_MORPHISM,
    Morphism,
    erasing_morphism,
    identity_morphism,
)

words = st.text(alphabet="ab", max_size=10)


class TestMorphism:
    def test_paper_morphism(self):
        # h(a) = b, h(b) = b from the Theorem 5.8 proof.
        assert PAPER_MORPHISM("aab") == "bbb"
        assert PAPER_MORPHISM("") == ""

    @given(words, words)
    def test_homomorphism_law(self, u, v):
        h = PAPER_MORPHISM
        assert h(u + v) == h(u) + h(v)

    @given(words)
    def test_identity(self, w):
        assert identity_morphism("ab")(w) == w

    def test_erasing(self):
        h = erasing_morphism("ab", "b")
        assert h("abba") == "aa"
        assert h.is_erasing()

    def test_length_preserving(self):
        assert PAPER_MORPHISM.is_length_preserving()
        assert not erasing_morphism("ab", "a").is_length_preserving()

    def test_undefined_letter(self):
        with pytest.raises(ValueError):
            PAPER_MORPHISM("abc")

    def test_multiletter_key_rejected(self):
        with pytest.raises(ValueError):
            Morphism({"ab": "a"})

    def test_graph(self):
        assert PAPER_MORPHISM.graph(["a", "b"]) == {("a", "b"), ("b", "b")}
