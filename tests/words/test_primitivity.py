"""Tests for repro.words.primitivity — including the paper's word lemmas."""

import pytest
from hypothesis import given, strategies as st

from repro.words.primitivity import (
    PowerFactorization,
    exponent,
    exponent_additivity_defect,
    is_imprimitive,
    is_primitive,
    power_factorization,
    primitive_occurrences_in_power,
    primitive_root,
)

words = st.text(alphabet="ab", min_size=1, max_size=10)
primitive_words = words.filter(is_primitive)


class TestPrimitivity:
    def test_empty_word_imprimitive_by_convention(self):
        assert is_imprimitive("")
        assert not is_primitive("")

    @pytest.mark.parametrize("w", ["a", "ab", "aab", "aba", "abaabb", "bbaaba"])
    def test_primitive_examples(self, w):
        assert is_primitive(w)

    @pytest.mark.parametrize("w", ["aa", "abab", "aabaab", "bbbb"])
    def test_imprimitive_examples(self, w):
        assert is_imprimitive(w)

    @given(words, st.integers(min_value=2, max_value=4))
    def test_proper_powers_are_imprimitive(self, w, k):
        assert is_imprimitive(w * k)

    @given(words)
    def test_primitive_iff_brute_force(self, w):
        brute = not any(
            w == w[:d] * (len(w) // d)
            for d in range(1, len(w))
            if len(w) % d == 0
        )
        assert is_primitive(w) == brute


class TestPrimitiveRoot:
    def test_root_of_power(self):
        assert primitive_root("ababab") == "ab"

    def test_root_of_primitive_is_itself(self):
        assert primitive_root("aab") == "aab"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            primitive_root("")

    @given(words)
    def test_root_is_primitive_and_generates(self, w):
        root = primitive_root(w)
        assert is_primitive(root)
        assert len(w) % len(root) == 0
        assert root * (len(w) // len(root)) == w


class TestExponent:
    def test_paper_example(self):
        # exp_a(aaaabaabaab) = 4 and exp_aab(aaaabaabaab) = 3 (Section 4.2).
        u = "aaaabaabaab"
        assert exponent("a", u) == 4
        assert exponent("aab", u) == 3

    def test_no_occurrence(self):
        assert exponent("ba", "aaa") == 0

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            exponent("", "abc"[:2])

    @given(primitive_words, st.integers(min_value=0, max_value=5))
    def test_exponent_of_exact_power(self, w, m):
        # exp_w(w^m) can exceed m only via internal overlap — impossible
        # for primitive w (Lemma A.1).
        assert exponent(w, w * m) == m


class TestPowerFactorization:
    """Lemma 4.7 (obs:factorOfRep): unique u₁·wⁿ·u₂ factorisation."""

    def test_simple(self):
        decomposition = power_factorization("ab", "babab")
        assert decomposition.rebuild() == "babab"
        assert decomposition.suffix == "b"
        assert decomposition.exp == 2
        assert decomposition.prefix == ""

    def test_exponent_swap_is_duplicators_move(self):
        decomposition = power_factorization("ab", "babab")
        assert decomposition.with_exponent(3) == "b" + "ab" * 3

    def test_requires_primitive_base(self):
        with pytest.raises(ValueError):
            power_factorization("abab", "abababab")

    def test_requires_occurrence(self):
        with pytest.raises(ValueError):
            power_factorization("ab", "aa")

    @given(primitive_words, st.integers(min_value=2, max_value=4),
           st.data())
    def test_factorization_of_random_factor(self, w, m, data):
        host = w * m
        start = data.draw(st.integers(min_value=0, max_value=len(host) - 1))
        end = data.draw(st.integers(min_value=start + 1, max_value=len(host)))
        u = host[start:end]
        if exponent(w, u) < 1:
            return
        decomposition = power_factorization(w, u)
        assert decomposition.rebuild() == u
        assert len(decomposition.suffix) < len(w)
        assert len(decomposition.prefix) < len(w)
        assert w.endswith(decomposition.suffix)
        assert w.startswith(decomposition.prefix)
        assert decomposition.exp == exponent(w, u)


class TestPrimitiveOverlap:
    """Lemma A.1 (obs:primitive): primitive words occur in their powers
    only at multiples of their length."""

    @given(primitive_words, st.integers(min_value=1, max_value=5))
    def test_occurrences_at_multiples_only(self, w, m):
        offsets = primitive_occurrences_in_power(w, m)
        assert offsets == [i * len(w) for i in range(m)]

    def test_imprimitive_counterexample(self):
        # aa occurs inside (aa)^2 at offset 1 as well — imprimitivity.
        assert 1 in primitive_occurrences_in_power("aa", 2)


class TestExponentAdditivity:
    """Lemma D.4 (expoIncrease): defect ∈ {0, 1} for factors of w^m."""

    @given(primitive_words, st.integers(min_value=2, max_value=4), st.data())
    def test_defect_zero_or_one(self, w, m, data):
        host = w * m
        cut_1 = data.draw(st.integers(min_value=0, max_value=len(host)))
        cut_2 = data.draw(st.integers(min_value=cut_1, max_value=len(host)))
        cut_0 = data.draw(st.integers(min_value=0, max_value=cut_1))
        u = host[cut_0:cut_1]
        v = host[cut_1:cut_2]
        assert exponent_additivity_defect(w, u, v) in (0, 1)
