"""Tests for conjugacy, co-primitivity, and Lemma 4.10's stabilisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.words.conjugacy import (
    are_conjugate,
    are_coprimitive,
    conjugates,
    factor_intersection_profile,
    stable_intersection_bound,
)
from repro.words.primitivity import is_primitive

words = st.text(alphabet="ab", min_size=1, max_size=8)


class TestConjugacy:
    def test_paper_example_conjugate(self):
        # aabba and aaabb are conjugate via x = aabb, y = a (Section 4.3).
        assert are_conjugate("aabba", "aaabb")

    def test_paper_example_coprimitive(self):
        # aba and bba are co-primitive (different letter counts).
        assert are_coprimitive("aba", "bba")
        assert not are_coprimitive("aabba", "aaabb")

    def test_l5_blocks_are_coprimitive(self):
        # The L5 building blocks from Lemma 4.14.
        assert are_coprimitive("abaabb", "bbaaba")

    @given(words)
    def test_conjugacy_reflexive(self, w):
        assert are_conjugate(w, w)

    @given(words, st.integers(min_value=0, max_value=7))
    def test_rotations_are_conjugate(self, w, i):
        rotation = w[i % len(w):] + w[: i % len(w)]
        assert are_conjugate(w, rotation)

    @given(words)
    def test_conjugates_listing(self, w):
        rotated = conjugates(w)
        assert w in rotated
        assert all(are_conjugate(w, v) for v in rotated)
        assert len(rotated) == len(set(rotated))

    def test_different_lengths_never_conjugate(self):
        assert not are_conjugate("ab", "aba")

    @given(words, words)
    def test_conjugate_words_are_anagrams(self, u, v):
        if are_conjugate(u, v):
            assert sorted(u) == sorted(v)


class TestCoprimitivity:
    @given(words, words)
    def test_coprimitive_requires_primitive(self, u, v):
        if are_coprimitive(u, v):
            assert is_primitive(u) and is_primitive(v)

    def test_imprimitive_never_coprimitive(self):
        assert not are_coprimitive("abab", "bba")


class TestIntersectionStabilisation:
    """Lemma 4.10: co-primitive ⟺ Facs(wⁿ) ∩ Facs(vᵐ) stabilises."""

    def test_coprimitive_stabilises(self):
        profile = factor_intersection_profile("aba", "bba", max_exponent=8)
        assert profile.stabilised
        assert profile.max_common_length <= len("aba") + len("bba") - 2

    def test_conjugate_does_not_stabilise(self):
        profile = factor_intersection_profile("ab", "ba", max_exponent=8)
        assert not profile.stabilised

    def test_l5_blocks_stabilise(self):
        profile = factor_intersection_profile(
            "abaabb", "bbaaba", max_exponent=6
        )
        assert profile.stabilised

    @settings(deadline=None, max_examples=60)
    @given(
        words.filter(is_primitive),
        words.filter(is_primitive),
    )
    def test_lemma_4_10_equivalence(self, u, v):
        profile = factor_intersection_profile(u, v)
        if are_coprimitive(u, v):
            assert profile.stabilised
        else:
            # Primitive but not co-primitive means conjugate; conjugate
            # words share ever-longer factors, so no stabilisation.
            assert not profile.stabilised

    def test_bound_raises_on_conjugates(self):
        with pytest.raises(ValueError):
            stable_intersection_bound("ab", "ba")

    def test_bound_respects_periodicity_lemma(self):
        bound = stable_intersection_bound("aba", "bba")
        assert bound <= len("aba") + len("bba") - 2

    @settings(deadline=None, max_examples=60)
    @given(
        words.filter(is_primitive),
        words.filter(is_primitive),
    )
    def test_bound_dominates_observed_intersections(self, u, v):
        if not are_coprimitive(u, v):
            return
        bound = stable_intersection_bound(u, v)
        from repro.words.factors import common_factors

        for n in range(1, 6):
            longest = max(len(x) for x in common_factors(u * n, v * n))
            assert longest <= bound
