"""Differential tests: store-hydrated artifacts ≡ cold-built artifacts.

The store is an accelerator, never an oracle: everything a hydration
path returns must be bit-identical to what the cold build computes.
Each test builds cold, publishes, drops the in-process caches, rebuilds
through the store, and compares structures field by field.
"""

import os
import subprocess
import sys

import pytest

from repro.ef.equivalence import solver_for
from repro.fc.builders import phi_copy, phi_ww
from repro.fc.semantics import satisfying_assignments
from repro.fc.syntax import Concat, Exists, Var, alpha_canonical
from repro.kernel.automorphisms import automorphism_group
from repro.kernel.interning import intern_table
from repro.store import stats
from repro.store import runtime as store_runtime
from repro.store.backends import MemoryBackend
from repro.store.core import ArtifactStore

#: ≥ the interning hydration threshold (``_STORE_MIN_WORD = 12``), a
#: factor universe over the automorphism store threshold (16) but under
#: the enumeration cap (80) so the true group gets persisted.
WORD = "aabbab" * 2
ALPHABET = ("a", "b")


def _clear_kernel_caches() -> None:
    intern_table.cache_clear()
    automorphism_group.cache_clear()
    solver_for.cache_clear()


@pytest.fixture
def active_store():
    store = ArtifactStore(MemoryBackend())
    previous = store_runtime.activate(store)
    _clear_kernel_caches()
    try:
        yield store
    finally:
        store_runtime.deactivate(previous)
        _clear_kernel_caches()


@pytest.fixture
def cold_table():
    # Built with no store in sight.
    previous = store_runtime.activate(None)
    _clear_kernel_caches()
    try:
        yield intern_table(WORD, ALPHABET)
    finally:
        store_runtime.deactivate(previous)
        _clear_kernel_caches()


def _assert_tables_identical(left, right) -> None:
    assert left.word == right.word
    assert left.alphabet == right.alphabet
    assert left.elements == right.elements
    assert left.id_of == right.id_of
    assert left.lengths == right.lengths
    assert left.const_ids == right.const_ids
    assert left.n_factors == right.n_factors


class TestInternTable:
    def test_hydrated_table_is_bit_identical(self, cold_table, active_store):
        populate = intern_table(WORD, ALPHABET)  # cold build + publish
        _assert_tables_identical(populate, cold_table)
        intern_table.cache_clear()
        before = stats.snapshot()
        hydrated = intern_table(WORD, ALPHABET)
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_hits", 0) >= 1, "second build did not hydrate"
        _assert_tables_identical(hydrated, cold_table)

    def test_short_words_never_touch_the_store(self, active_store):
        before = stats.snapshot()
        intern_table("abab", ALPHABET)
        assert stats.diff(before, stats.snapshot()) == {}


class TestAutomorphismGroup:
    def test_hydrated_group_is_identical(self, active_store):
        table = intern_table(WORD, ALPHABET)
        cold = automorphism_group(table)
        automorphism_group.cache_clear()
        before = stats.snapshot()
        warm = automorphism_group(table)
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_hits", 0) >= 1
        assert warm == cold


class TestEfMemo:
    # ≥ _PERSIST_MIN_ENTRIES memo positions at rank 2, still milliseconds.
    PAIR = ("aaaabbbb", "aaaaabbbb")

    def test_memo_round_trips_with_identical_verdicts(self, active_store):
        w, v = self.PAIR
        cold_solver = solver_for(w, v, "ab")
        cold = [cold_solver.duplicator_wins(k) for k in (0, 1, 2)]
        assert cold_solver._core.memo_size() >= 32  # threshold sanity
        solver_for.cache_clear()
        before = stats.snapshot()
        warm_solver = solver_for(w, v, "ab")
        assert warm_solver._core.memo_size() == cold_solver._core.memo_size()
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_hits", 0) >= 1
        assert [warm_solver.duplicator_wins(k) for k in (0, 1, 2)] == cold

    def test_tiny_games_are_not_persisted(self, active_store):
        solver = solver_for("aabb", "aaabb", "ab")
        solver.duplicator_wins(2)
        assert solver._core.memo_size() < 32
        before = stats.snapshot()
        solver.duplicator_wins(1)
        delta = stats.diff(before, stats.snapshot())
        assert "store_stores" not in delta


class TestFcAssignments:
    WORD = "abab"

    def _rows(self):
        formula = phi_copy(Var("x"), Var("y"))
        return [
            sorted((var.name, value) for var, value in row.items())
            for row in satisfying_assignments(self.WORD, formula, "ab")
        ]

    def test_hydrated_assignments_match_cold_enumeration(self, active_store):
        previous = store_runtime.activate(None)
        try:
            cold = self._rows()
        finally:
            store_runtime.deactivate(previous)
        populated = self._rows()  # enumerates + publishes
        before = stats.snapshot()
        hydrated = self._rows()
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_hits", 0) >= 1
        assert populated == cold
        assert hydrated == cold

    def test_partial_scans_are_never_published(self, active_store):
        formula = phi_copy(Var("x"), Var("y"))
        before = stats.snapshot()
        next(iter(satisfying_assignments(self.WORD, formula, "ab")))
        delta = stats.diff(before, stats.snapshot())
        assert "store_stores" not in delta


class TestAlphaCanonical:
    def test_binder_names_do_not_change_the_canonical_form(self):
        # The same formula under two gensym epochs (different bound
        # names, identical structure) must fingerprint identically —
        # this is what keeps fc-assignments keys process-independent.
        x, y, free = Var("x"), Var("y"), Var("free")
        base = Exists(x, Exists(y, Concat(free, x, y)))
        renamed = Exists(
            Var("_b9_0"),
            Exists(
                Var("_b9_1"), Concat(free, Var("_b9_0"), Var("_b9_1"))
            ),
        )
        assert repr(alpha_canonical(base)) == repr(alpha_canonical(renamed))

    def test_distinct_structures_stay_distinct(self):
        x, y, free = Var("x"), Var("y"), Var("free")
        left = Exists(x, Exists(y, Concat(free, x, y)))
        right = Exists(x, Exists(y, Concat(free, y, x)))
        assert repr(alpha_canonical(left)) != repr(alpha_canonical(right))

    def test_free_variables_are_preserved(self):
        x, free = Var("x"), Var("free")
        phi = Exists(x, Concat(free, x, x))
        assert "free" in repr(alpha_canonical(phi))
        assert "⟨q0⟩" in repr(alpha_canonical(phi))


def test_dfa_construction_is_hash_seed_independent():
    """The E16 keying regression: the subset construction must not leak
    string-hash iteration order into transition insertion order (which
    bounded decompositions, and therefore store fingerprints, reflect).
    """
    probe = (
        "import repro.fc\n"
        "from repro.fcreg.regex import parse_regex\n"
        "from repro.fcreg.automata import compile_regex\n"
        "from repro.fcreg.bounded import bounded_decomposition\n"
        "for pat in ['(ab)*', 'a|b', '(a|b)(a|b)', 'a*b*', '(ba)*b?']:\n"
        "    dfa = compile_regex(parse_regex(pat))\n"
        "    print(pat, sorted(dfa.transitions.items()))\n"
        "    print(pat, bounded_decomposition(dfa))\n"
    )
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
    )
    outputs = []
    for seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
