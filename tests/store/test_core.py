"""Envelope semantics: keying, round-trips, and corruption-as-miss."""

import json

from repro.store import stats
from repro.store.backends import MemoryBackend
from repro.store.core import STORE_SALT, ArtifactStore, canonical_args

ARGS = {"word": "abab", "alphabet": "ab"}


def _store() -> ArtifactStore:
    return ArtifactStore(MemoryBackend())


class TestKeying:
    def test_key_ignores_args_insertion_order(self):
        store = _store()
        flipped = {"alphabet": "ab", "word": "abab"}
        assert store.key_for("k", "1", ARGS) == store.key_for("k", "1", flipped)

    def test_key_separates_all_parts(self):
        store = _store()
        base = store.key_for("kind", "1", ARGS)
        assert store.key_for("kine", "1", ARGS) != base
        assert store.key_for("kind", "2", ARGS) != base
        assert store.key_for("kind", "1", {**ARGS, "word": "abba"}) != base
        assert ArtifactStore(MemoryBackend(), salt="s2").key_for(
            "kind", "1", ARGS
        ) != base

    def test_canonical_args_sorts_keys(self):
        assert canonical_args({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'


class TestRoundTrip:
    def test_payload_survives_bit_identically(self):
        store = _store()
        payload = ["", "a", "ab", ["nested", {"deep": True}], 17]
        key = store.store("kind", "1", ARGS, payload)
        assert store.load("kind", "1", ARGS) == payload
        # The backend bytes are a deterministic envelope.
        record = json.loads(store.backend.get(key).decode("utf-8"))
        assert record == {
            "key": key,
            "salt": STORE_SALT,
            "kind": "kind",
            "version": "1",
            "args": ARGS,
            "payload": payload,
        }

    def test_absent_is_a_miss(self):
        store = _store()
        before = stats.snapshot()
        assert store.load("kind", "1", ARGS) is None
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_misses") == 1
        assert "store_errors" not in delta


class TestCorruption:
    def _stored(self) -> tuple[ArtifactStore, str]:
        store = _store()
        key = store.store("kind", "1", ARGS, [1, 2, 3])
        return store, key

    def _expect_error_miss(self, store: ArtifactStore):
        before = stats.snapshot()
        assert store.load("kind", "1", ARGS) is None
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_misses") == 1
        assert delta.get("store_errors") == 1

    def test_undecodable_bytes_are_a_miss(self):
        store, key = self._stored()
        store.backend.put(key, b"\xff\xfe not json")
        self._expect_error_miss(store)

    def test_non_object_record_is_a_miss(self):
        store, key = self._stored()
        store.backend.put(key, b'["not", "an", "envelope"]')
        self._expect_error_miss(store)

    def test_truncated_envelope_is_a_miss(self):
        store, key = self._stored()
        raw = json.loads(store.backend.get(key))
        del raw["payload"]
        store.backend.put(key, json.dumps(raw).encode())
        self._expect_error_miss(store)

    def test_stale_salt_is_a_miss(self):
        backend = MemoryBackend()
        old = ArtifactStore(backend, salt="repro-store-v0")
        old.store("kind", "1", ARGS, [1])
        fresh = ArtifactStore(backend)
        before = stats.snapshot()
        assert fresh.load("kind", "1", ARGS) is None
        delta = stats.diff(before, stats.snapshot())
        # Different salt → different key → a plain miss, no error.
        assert delta.get("store_misses") == 1

    def test_foreign_record_under_the_right_key_is_a_miss(self):
        # A hand-edited backend serving someone else's envelope under our
        # key must not hydrate.
        store, key = self._stored()
        raw = json.loads(store.backend.get(key))
        raw["kind"] = "other-kind"
        store.backend.put(key, json.dumps(raw).encode())
        self._expect_error_miss(store)


class _ExplodingBackend(MemoryBackend):
    def get(self, key):
        raise OSError("disk gone")

    def put(self, key, record):
        raise OSError("disk full")


class TestBackendFailures:
    def test_get_failure_is_an_error_miss(self):
        store = ArtifactStore(_ExplodingBackend())
        before = stats.snapshot()
        assert store.load("kind", "1", ARGS) is None
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_errors") == 1
        assert delta.get("store_misses") == 1

    def test_put_failure_is_swallowed(self):
        store = ArtifactStore(_ExplodingBackend())
        before = stats.snapshot()
        key = store.store("kind", "1", ARGS, [1])
        assert isinstance(key, str) and len(key) == 64
        delta = stats.diff(before, stats.snapshot())
        assert delta.get("store_errors") == 1
        assert "store_stores" not in delta


def test_describe_includes_salt():
    store = _store()
    info = store.describe()
    assert info["salt"] == STORE_SALT
    assert info["backend"] == "memory"
