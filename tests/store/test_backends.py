"""Backend contract tests: memory, sqlite, spec resolution, concurrency."""

import multiprocessing

import pytest

from repro.store.backends import (
    MemoryBackend,
    SqliteBackend,
    open_backend,
)

KEY_A = "aa" * 32
KEY_B = "bb" * 32


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        made = SqliteBackend(tmp_path / "artifacts.sqlite")
        yield made
        made.close()


class TestContract:
    def test_get_absent_is_none(self, backend):
        assert backend.get(KEY_A) is None

    def test_put_get_roundtrip(self, backend):
        backend.put(KEY_A, b"\x00binary\xff")
        assert backend.get(KEY_A) == b"\x00binary\xff"

    def test_last_writer_wins(self, backend):
        backend.put(KEY_A, b"first")
        backend.put(KEY_A, b"second")
        assert backend.get(KEY_A) == b"second"

    def test_keys_sorted(self, backend):
        backend.put(KEY_B, b"b")
        backend.put(KEY_A, b"a")
        assert backend.keys() == [KEY_A, KEY_B]

    def test_describe_has_backend_and_path(self, backend):
        info = backend.describe()
        assert set(info) >= {"backend", "path"}


class TestSqlite:
    def test_records_survive_close_and_reopen(self, tmp_path):
        path = tmp_path / "artifacts.sqlite"
        first = SqliteBackend(path)
        first.put(KEY_A, b"persisted")
        first.close()
        second = SqliteBackend(path)
        assert second.get(KEY_A) == b"persisted"
        second.close()

    def test_fork_inherited_backend_reopens_its_handle(self, tmp_path):
        backend = SqliteBackend(tmp_path / "artifacts.sqlite")
        backend.put(KEY_A, b"parent")

        def child() -> None:
            backend.put(KEY_B, b"child")

        process = multiprocessing.get_context("fork").Process(target=child)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        assert backend.get(KEY_A) == b"parent"
        assert backend.get(KEY_B) == b"child"
        backend.close()


def _hammer(task) -> None:
    path, worker = task
    backend = SqliteBackend(path)
    for i in range(25):
        backend.put(f"{worker:02d}{i:02d}" + "0" * 60, f"w{worker}r{i}".encode())
        backend.put("ff" * 32, f"shared from {worker}".encode())
    backend.close()


def test_concurrent_writers_do_not_corrupt(tmp_path):
    path = tmp_path / "artifacts.sqlite"
    workers = 4
    with multiprocessing.get_context("fork").Pool(workers) as pool:
        pool.map(_hammer, [(path, worker) for worker in range(workers)])
    backend = SqliteBackend(path)
    try:
        keys = backend.keys()
        assert len(keys) == workers * 25 + 1
        for worker in range(workers):
            for i in range(25):
                key = f"{worker:02d}{i:02d}" + "0" * 60
                assert backend.get(key) == f"w{worker}r{i}".encode()
        assert backend.get("ff" * 32) in {
            f"shared from {worker}".encode() for worker in range(workers)
        }
    finally:
        backend.close()


class TestOpenBackend:
    def test_memory_specs(self):
        assert isinstance(open_backend("memory"), MemoryBackend)
        assert isinstance(open_backend(":memory:"), MemoryBackend)

    def test_sqlite_prefix(self, tmp_path):
        backend = open_backend(f"sqlite:{tmp_path}/store.sqlite")
        assert isinstance(backend, SqliteBackend)
        assert backend.path == tmp_path / "store.sqlite"

    def test_file_suffixes_go_direct(self, tmp_path):
        for suffix in (".sqlite", ".db", ".sqlite3"):
            backend = open_backend(tmp_path / f"s{suffix}")
            assert backend.path == tmp_path / f"s{suffix}"

    def test_directory_gets_default_filename(self, tmp_path):
        backend = open_backend(tmp_path)
        assert backend.path == tmp_path / "artifacts.sqlite"
