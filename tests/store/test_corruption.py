"""Store-corruption demotion: damaged records are misses, never poison.

Three corruption shapes the wild actually produces — a byte-truncated
sqlite record (torn copy, interrupted rsync), a wrong-salt envelope
under the right key (hand-edited or foreign store file), and a
version-mismatch envelope (stale artifact after a kind-version bump) —
must each demote to a counted miss and fall back to the cold build.
The hydrated-after-corruption structures must stay bit-identical to a
cold build: the store is an accelerator, never an oracle.
"""

import json
import sqlite3

import pytest

from repro.ef.equivalence import solver_for
from repro.kernel.automorphisms import automorphism_group
from repro.kernel.interning import intern_table
from repro.store import runtime as store_runtime
from repro.store import stats
from repro.store.backends import SqliteBackend
from repro.store.core import ArtifactStore

ARGS = {"word": "abab", "alphabet": "ab"}

#: Long enough to cross the interning hydration threshold
#: (``_STORE_MIN_WORD = 12``), same as tests/store/test_hydration.py.
WORD = "aabbab" * 2
ALPHABET = ("a", "b")


def _clear_kernel_caches() -> None:
    intern_table.cache_clear()
    automorphism_group.cache_clear()
    solver_for.cache_clear()


def _sqlite_store(tmp_path) -> ArtifactStore:
    return ArtifactStore(SqliteBackend(tmp_path / "store.sqlite"))


def _expect_error_miss(store: ArtifactStore) -> None:
    before = stats.snapshot()
    assert store.load("kind", "1", ARGS) is None
    delta = stats.diff(before, stats.snapshot())
    assert delta.get("store_misses") == 1
    assert delta.get("store_errors") == 1


# -- the three corruption shapes, at the record level ------------------------


def test_truncated_sqlite_record_is_a_miss(tmp_path):
    store = _sqlite_store(tmp_path)
    key = store.store("kind", "1", ARGS, [1, 2, 3])
    # Tear the record behind the backend's back, as a torn file copy
    # would: the row survives but holds half an envelope.
    with sqlite3.connect(store.backend.path) as conn:
        raw = conn.execute(
            "SELECT record FROM artifacts WHERE key = ?", (key,)
        ).fetchone()[0]
        conn.execute(
            "UPDATE artifacts SET record = ? WHERE key = ?",
            (sqlite3.Binary(bytes(raw)[: len(raw) // 2]), key),
        )
    _expect_error_miss(store)
    # A rebuild repairs the record in place; the next load hydrates.
    store.store("kind", "1", ARGS, [1, 2, 3])
    assert store.load("kind", "1", ARGS) == [1, 2, 3]


def test_wrong_salt_record_under_the_right_key_is_a_miss(tmp_path):
    # Unlike a salt *bump* (different key, plain miss), this is a record
    # whose envelope lies about its salt under our exact key.
    store = _sqlite_store(tmp_path)
    key = store.store("kind", "1", ARGS, [1, 2, 3])
    record = json.loads(store.backend.get(key).decode("utf-8"))
    record["salt"] = "not-this-store's-salt"
    store.backend.put(key, json.dumps(record, sort_keys=True).encode())
    _expect_error_miss(store)


def test_version_mismatch_record_is_a_miss(tmp_path):
    store = _sqlite_store(tmp_path)
    key = store.store("kind", "1", ARGS, [1, 2, 3])
    record = json.loads(store.backend.get(key).decode("utf-8"))
    record["version"] = "999"
    store.backend.put(key, json.dumps(record, sort_keys=True).encode())
    _expect_error_miss(store)


# -- corruption never poisons hydration --------------------------------------


def _truncate(backend) -> None:
    for key in backend.keys():
        raw = backend.get(key)
        backend.put(key, raw[: len(raw) // 2])


def _resalt(backend) -> None:
    for key in backend.keys():
        record = json.loads(backend.get(key).decode("utf-8"))
        record["salt"] = "evil"
        backend.put(key, json.dumps(record, sort_keys=True).encode())


def _reversion(backend) -> None:
    for key in backend.keys():
        record = json.loads(backend.get(key).decode("utf-8"))
        record["version"] = "999"
        backend.put(key, json.dumps(record, sort_keys=True).encode())


def _assert_tables_identical(left, right) -> None:
    assert left.word == right.word
    assert left.alphabet == right.alphabet
    assert left.elements == right.elements
    assert left.id_of == right.id_of
    assert left.lengths == right.lengths
    assert left.const_ids == right.const_ids
    assert left.n_factors == right.n_factors


@pytest.mark.parametrize(
    "corrupt", [_truncate, _resalt, _reversion],
    ids=["truncated", "wrong-salt", "version-mismatch"],
)
def test_corrupted_records_never_poison_hydration(tmp_path, corrupt):
    # Cold reference, no store in sight.
    previous = store_runtime.activate(None)
    _clear_kernel_caches()
    try:
        cold = intern_table(WORD, ALPHABET)
    finally:
        store_runtime.deactivate(previous)
        _clear_kernel_caches()

    store = _sqlite_store(tmp_path)
    previous = store_runtime.activate(store)
    try:
        published = intern_table(WORD, ALPHABET)  # cold build + publish
        _assert_tables_identical(published, cold)
        assert store.backend.keys(), "publish wrote no records"
        corrupt(store.backend)
        intern_table.cache_clear()
        before = stats.snapshot()
        rebuilt = intern_table(WORD, ALPHABET)
        delta = stats.diff(before, stats.snapshot())
        # The damaged record served nothing: a counted miss, then the
        # cold path rebuilt the exact same structure.
        assert delta.get("store_hits", 0) == 0
        assert delta.get("store_misses", 0) >= 1
        assert delta.get("store_errors", 0) >= 1
        _assert_tables_identical(rebuilt, cold)
    finally:
        store_runtime.deactivate(previous)
        _clear_kernel_caches()
