"""EF game explorer: watch Spoiler and Duplicator actually play.

Replays the paper's Example 3.3 (Spoiler's 2-round win on a⁴ vs a³) move
by move, then shows Duplicator's optimal survival on the ≡₂ pair
(a¹², a¹⁴), and finally the Primitive Power composition at work on
(ab)¹² vs (ab)¹⁴.

Run:  python examples/ef_game_explorer.py
"""

from repro.ef.composition import (
    FringePreservingUnaryDuplicator,
    PrimitivePowerDuplicator,
)
from repro.ef.game import GameArena, Move, Play
from repro.ef.solver import GameSolver
from repro.ef.strategies import SolverDuplicator
from repro.fc.structures import word_structure


def show_play(play: Play, label: str) -> None:
    print(f"\n{label}")
    for index, round_ in enumerate(play.rounds_played, start=1):
        move = round_.move
        print(
            f"  round {index}: Spoiler picks {move.element!r} on side "
            f"{move.side}; Duplicator answers {round_.response!r}"
        )
    violation = play.violation()
    if violation is None:
        print("  → Duplicator survives (partial isomorphism intact)")
    else:
        print(f"  → Spoiler wins: {violation}")


def example_3_3() -> None:
    print("=== Example 3.3: a⁴ vs a³, two rounds ===")
    w, v = "aaaa", "aaa"
    arena = GameArena(word_structure(w, "a"), word_structure(v, "a"), 2)
    solver = GameSolver(arena.structure_a, arena.structure_b)
    duplicator = SolverDuplicator(solver, 2)

    play = Play(arena)
    opening = Move("A", w)  # the paper's opening: the whole word a^{2i}
    try:
        response = duplicator.respond(opening)
        play.record(opening, response)
    except RuntimeError:
        # Optimal play already knows every response loses; demonstrate
        # with the best *surviving-one-round* response instead.
        print("  Duplicator has NO winning response to the opening move —")
        print("  (the solver proves the position lost at every answer).")
        for candidate in ("aaa", "aa", "a"):
            probe = Play(arena)
            probe.record(opening, candidate)
            if not probe.duplicator_won():
                print(
                    f"    if Duplicator tries {candidate!r}: already lost "
                    f"({probe.violation().kind} violation)"
                )
                continue
            follow = solver.spoiler_winning_move(
                1, frozenset({(w, candidate)})
            )
            print(
                f"    if Duplicator tries {candidate!r}, Spoiler kills with "
                f"{follow.element!r} on side {follow.side}"
            )
        return
    show_play(play, "unexpected survival (should not happen)")


def equivalent_pair() -> None:
    print("\n=== Duplicator's optimal play on a¹² ≡₂ a¹⁴ ===")
    w, v = "a" * 12, "a" * 14
    arena = GameArena(word_structure(w, "a"), word_structure(v, "a"), 2)
    solver = GameSolver(arena.structure_a, arena.structure_b)
    duplicator = SolverDuplicator(solver, 2)
    play = Play(arena)
    for move in (Move("B", "a" * 13), Move("A", "a" * 6)):
        response = duplicator.respond(move)
        play.record(move, response)
    show_play(play, "Spoiler probes the long end, then the middle:")


def primitive_power_composition() -> None:
    print("\n=== Lemma 4.8's strategy on (ab)¹² vs (ab)¹⁴ ===")
    p, q = 12, 14
    arena = GameArena(
        word_structure("ab" * p, "ab"), word_structure("ab" * q, "ab"), 1
    )
    duplicator = PrimitivePowerDuplicator(
        "ab", p, q, FringePreservingUnaryDuplicator(p, q)
    )
    play = Play(arena)
    probe = Move("B", "b" + "ab" * 12 + "a")  # deep factor, exp = 12
    response = duplicator.respond(probe)
    play.record(probe, response)
    show_play(
        play,
        "Spoiler picks a near-full factor of the longer power; the "
        "strategy factorises (Lemma 4.7), consults the unary look-up, and "
        "reassembles:",
    )


if __name__ == "__main__":
    example_3_3()
    equivalent_pair()
    primitive_power_composition()
