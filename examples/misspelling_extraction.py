"""The paper's introduction scenario: rule-based information extraction.

The intro motivates spanners with SystemT/AQL-style extraction: a regex
formula γ(x) = Σ*·x{acheive | begining | … | wether}·Σ* marks misspelling
occurrences, and the relational algebra post-processes the extracted span
relation.  This example runs that pipeline end-to-end on a synthetic
document, including a generalized-core step (difference) that dedups
overlapping findings, and a ζ= step that groups repeated misspellings.

Run:  python examples/misspelling_extraction.py
"""

from repro.spanners.spanner import extract

MISSPELLINGS = ["acheive", "begining", "wether"]

DOCUMENT = (
    "to acheive results from the begining you must acheive focus "
    "wether or not the begining was hard"
)


def build_extractor():
    """γ(x) = .*x{m₁|m₂|…}.* over the letter alphabet."""
    alternation = "|".join(MISSPELLINGS)
    return extract(f".*x{{{alternation}}}.*")


def main() -> None:
    gamma = build_extractor()
    relation = gamma.evaluate(DOCUMENT)
    print(f"document ({len(DOCUMENT)} chars):\n  {DOCUMENT!r}\n")
    print(f"γ extracted {len(relation)} misspelling spans:")
    for row in sorted(relation, key=lambda r: r["x"]):
        span = row["x"]
        print(f"  {span}  {span.content(DOCUMENT)!r}")

    # Generalized-core step: pairs of *distinct* occurrences of the SAME
    # misspelling = (x-occurrences ⋈ y-occurrences) with ζ= minus the
    # diagonal (x = y as spans).
    pairs = gamma.evaluate(DOCUMENT).natural_join(
        build_extractor_y().evaluate(DOCUMENT)
    )
    same_word = pairs.select_equal("x", "y")
    repeated = [
        (row["x"], row["y"])
        for row in same_word
        if row["x"] < row["y"]
    ]
    print(f"\nζ= found {len(repeated)} repeated-misspelling pairs:")
    for left, right in sorted(repeated):
        print(
            f"  {left} & {right}  both {left.content(DOCUMENT)!r}"
        )

    # Aggregate per misspelling.
    counts: dict[str, int] = {}
    for row in relation:
        word = row["x"].content(DOCUMENT)
        counts[word] = counts.get(word, 0) + 1
    print("\noccurrences per misspelling:")
    for word in MISSPELLINGS:
        print(f"  {word:10s} {counts.get(word, 0)}")


def build_extractor_y():
    alternation = "|".join(MISSPELLINGS)
    return extract(f".*y{{{alternation}}}.*")


if __name__ == "__main__":
    main()
