"""Quickstart: the three layers of the library in five minutes.

1. FC — model-check formulas on word structures;
2. EF games — decide ≡_k exactly and extract witnesses;
3. spanners — extract, combine, select.

Run:  python examples/quickstart.py
"""

from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.ef.unary import minimal_equivalent_pair
from repro.fc.builders import phi_no_cube, phi_vbv, phi_ww
from repro.fc.semantics import models, satisfying_assignments
from repro.fc.syntax import Concat, Var
from repro.spanners.spanner import extract


def fc_layer() -> None:
    print("— FC: first-order logic over factor structures —")
    print(f"  'abab' is a square ww:        {models('abab', phi_ww(), 'ab')}")
    print(f"  'aba'  is a square ww:        {models('aba', phi_ww(), 'ab')}")
    print(f"  'aab'  is cube-free:          {models('aab', phi_no_cube(), 'ab')}")
    print(f"  'aaa'  is cube-free:          {models('aaa', phi_no_cube(), 'ab')}")

    # open formulas define relations: ⟦x ≐ y·y⟧(aaaa) is R_copy on factors.
    x, y = Var("x"), Var("y")
    copies = sorted(
        (s[x], s[y])
        for s in satisfying_assignments("aaaa", Concat(x, y, y), "a")
    )
    print(f"  R_copy on factors of aaaa:    {copies}")


def game_layer() -> None:
    print("\n— EF games: k-round equivalence, decided exactly —")
    print(f"  a^12 ≡₂ a^14:                 {equiv_k('a'*12, 'a'*14, 2)}")
    print(f"  a^12 ≡₂ a^13:                 {equiv_k('a'*12, 'a'*13, 2)}")
    print(
        "  distinguishing rank of a⁴/a³: "
        f"{distinguishing_rank('aaaa', 'aaa', 3, alphabet='a')}"
    )
    print("  minimal (p,q) with aᵖ ≡_k a^q per rank:")
    for k in range(3):
        print(f"    k={k}: {minimal_equivalent_pair(k, 20)}")


def spanner_layer() -> None:
    print("\n— document spanners: extract + algebra —")
    document = "aabaab"
    blocks = extract(".*x{a+}.*")
    print(f"  a-blocks of {document!r}:")
    for row in sorted(blocks.evaluate(document), key=lambda r: r["x"]):
        span = row["x"]
        print(f"    {span}  ↦  {span.content(document)!r}")

    pairs = blocks.join(extract(".*y{a+}.*"))
    repeats = pairs.eq("x", "y")
    distinct = sum(
        1 for row in repeats.evaluate(document) if row["x"] != row["y"]
    )
    print(f"  ζ= finds {distinct} repeated a-block pairs at distinct spans")
    print(f"  spanner class: {(pairs - repeats).classify()}")


if __name__ == "__main__":
    fc_layer()
    game_layer()
    spanner_layer()
