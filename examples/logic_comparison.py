"""Four logics, one inexpressibility question.

Compares the machinery around the paper on a single running question —
"which rank separates these words, and what does the certificate look
like?" — across:

1. FC with plain EF games (the paper's tool),
2. FO[EQ] with position games (the prior tool the paper replaces),
3. existential games (the conclusion's core-spanner direction),
4. pebble games (the conclusion's finite-variable direction),

plus the synthesised FC certificate for a separated pair.

Run:  python examples/logic_comparison.py
"""

from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.ef.existential import existential_preorder
from repro.ef.pebble import pebble_distinguishing_rounds
from repro.ef.synthesis import synthesize_distinguishing_sentence
from repro.fc.semantics import defines_language_member
from repro.fc.syntax import quantifier_rank
from repro.foeq.games import foeq_distinguishing_rank

PAIRS = [
    ("aaaa", "aaa"),
    ("ab", "ba"),
    ("abab", "abba"),
    ("aabb", "abab"),
]


def rank_table() -> None:
    print("=== separating ranks across game variants ===")
    print(f"{'pair':16s} {'FC':>4s} {'FO[EQ]':>7s} {'2-pebble':>9s}")
    for w, v in PAIRS:
        fc = distinguishing_rank(w, v, 4, "ab")
        foeq = foeq_distinguishing_rank(w, v, 4)
        pebble = pebble_distinguishing_rounds(w, v, 2, 4, "ab")
        print(f"{w + ' / ' + v:16s} {fc!s:>4s} {foeq!s:>7s} {pebble!s:>9s}")
    print(
        "\nFC's ternary concatenation relation separates at least as fast\n"
        "as the position signature on every pair — the executable face of\n"
        "the paper's 'simpler machinery' claim."
    )


def pebble_phenomenon() -> None:
    print("\n=== pebble reuse vs quantifier rank ===")
    w, v = "a" * 12, "a" * 14
    print(f"a^12 ≡₂ a^14 (plain game):        {equiv_k(w, v, 2, 'a')}")
    rounds = pebble_distinguishing_rounds(w, v, 2, 4, "a")
    print(f"2 pebbles separate them at round: {rounds}")
    print(
        "re-placing a pebble reuses a variable — FC with 2 variables and\n"
        "3 quantifier nestings sees what rank-2 FC cannot."
    )


def existential_asymmetry() -> None:
    print("\n=== existential (∃⁺) preservation ===")
    for p, q in ((3, 5), (5, 3)):
        verdict = existential_preorder("a" * p, "a" * q, 2)
        arrow = "⪯₂" if verdict else "⋠₂"
        print(f"a^{p} {arrow} a^{q}")
    print(
        "existential truths only travel upward: the one-sided game is the\n"
        "conclusion's suggested route to further core-spanner results."
    )


def certificate() -> None:
    print("\n=== synthesised certificate for a⁴ ≢₂ a³ ===")
    phi = synthesize_distinguishing_sentence("aaaa", "aaa", 2, "a")
    print(f"φ := {phi!r}")
    print(f"qr(φ) = {quantifier_rank(phi)}")
    print(f"a⁴ ⊨ φ: {defines_language_member('aaaa', phi, 'a')}")
    print(f"a³ ⊨ φ: {defines_language_member('aaa', phi, 'a')}")


if __name__ == "__main__":
    rank_table()
    pebble_phenomenon()
    existential_asymmetry()
    certificate()
