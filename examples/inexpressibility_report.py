"""Full inexpressibility report: the paper's main results, regenerated.

Produces, for every language of Lemma 4.14 (and Example 4.5) and every
relation of Theorem 5.8, the complete machine-checked evidence chain.

Run:  python examples/inexpressibility_report.py
"""

from repro.core.inexpressibility import (
    BOUNDING_SEQUENCES,
    language_report,
    relation_report,
)
from repro.core.pow2 import KNOWN_MINIMAL_PAIRS
from repro.core.relations import PSI_REDUCTIONS
from repro.core.witnesses import WITNESS_FAMILIES


def header(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main() -> None:
    header("Step 0 — Lemma 3.6: unary witness pairs (exact search)")
    for k, (p, q) in sorted(KNOWN_MINIMAL_PAIRS.items()):
        print(f"  k = {k}:  a^{p} ≡_{k} a^{q}  (minimal pair)")
    print("  k = 3:  no pair below exponent 48 (bounded search negative)")

    header("Step 1 — Lemma 4.14: languages outside FC")
    for name in sorted(WITNESS_FAMILIES):
        report = language_report(name, ranks=(0, 1), verify_equivalence_up_to=1)
        pair = report.pairs[-1]
        bound = "·".join(f"{w}*" for w in BOUNDING_SEQUENCES[name])
        print(f"\n  {name}  ({report.paper_ref})")
        print(f"    witness pair (k=1):  {pair.member!r} ∈ L,  {pair.foil!r} ∉ L")
        print(f"    member ≡_k foil (exact solver): {report.equivalences}")
        print(f"    bounded by {bound}: {report.bounded}")
        print(f"    verdict: {report.verdict} → {name} ∉ L(FC)")

    header("Step 2 — Lemma 5.4 bridge: bounded ⇒ FC[REG] adds nothing")
    print(
        "  every language above is a bounded language, so FC-"
        "inexpressibility lifts to FC[REG] (experiment E16 validates the\n"
        "  constructive rewriting on all of the paper's constraint patterns)"
    )

    header("Step 3 — Theorem 5.8: relations not selectable by")
    print("            generalized core spanners")
    for name in sorted(PSI_REDUCTIONS):
        report = relation_report(name, max_length=6)
        status = "✓" if report.reduction_agrees else "✗"
        print(
            f"  {status} {name:8s} →  ψ defines {report.target_language}"
            + (f"   [{report.note}]" if report.note else "")
        )
    print(
        "\n  each ψ uses only bounded regular constraints + the candidate\n"
        "  relation; a definable relation would therefore put a non-FC\n"
        "  bounded language into FC[REG] — contradiction.  By the\n"
        "  Freydenberger–Peterfreund correspondence, none of these\n"
        "  relations is selectable by generalized core spanners."
    )


if __name__ == "__main__":
    main()
