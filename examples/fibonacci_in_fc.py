"""Proposition 4.1 up close: FC expresses the Fibonacci-prefix language.

Walks through the construction of φ_fib (shape constraint + the
universal-quantifier "recursion"), model-checks it on members and near
misses, and demonstrates the 4th-power-freeness fact behind the paper's
"FC has no pumping lemma" remark.

Run:  python examples/fibonacci_in_fc.py
"""

from repro.fc.builders import phi_fib
from repro.fc.semantics import models
from repro.fc.syntax import quantifier_rank
from repro.words.fibonacci import (
    fibonacci_word,
    is_fourth_power_free,
    is_l_fib,
    l_fib_word,
)

PHI = phi_fib()


def members() -> None:
    print("=== members c·F₀·c·F₁·c···Fₙ·c ===")
    for n in range(7):
        word = l_fib_word(n)
        verdict = models(word, PHI, "abc")
        shown = word if len(word) <= 40 else word[:37] + "..."
        print(f"  n={n}  |w|={len(word):3d}  ⊨φ_fib={verdict}  {shown}")


def near_misses() -> None:
    print("\n=== near misses (one symbol off) ===")
    base = l_fib_word(3)
    candidates = [
        base[:-1],                # missing final separator
        base + "c",               # extra separator (creates cc)
        base.replace("abaab", "ababa", 1),  # corrupted F₃ block
        "c" + base,               # leading cc
    ]
    for word in candidates:
        print(
            f"  ⊨φ_fib={models(word, PHI, 'abc')!s:5s}  "
            f"oracle={is_l_fib(word)!s:5s}  {word!r}"
        )


def no_pumping() -> None:
    print("\n=== why FC has no pumping lemma (Karhumäki) ===")
    print(f"  qr(φ_fib) = {quantifier_rank(PHI)}")
    for n in (8, 10, 12):
        w = fibonacci_word(n)
        print(
            f"  F_{n} (length {len(w)}): 4th-power-free = "
            f"{is_fourth_power_free(w)}"
        )
    print(
        "  members of L_fib contain no u⁴, so no factor can be pumped\n"
        "  arbitrarily — yet L_fib ∈ L(FC).  A classical pumping lemma\n"
        "  for FC is therefore impossible."
    )


if __name__ == "__main__":
    members()
    near_misses()
    no_pumping()
