"""CI bench-smoke: guard solver search effort against silent regressions.

Runs a small, fast subset of the experiment DAG (``SMOKE_TASKS`` plus
their dependency closure) with ``jobs=1`` and the result cache disabled,
then compares each record's ``positions_explored`` solver delta against
the committed ``benchmarks/baselines.json``.  The run fails if

* any task errors, or
* any task explores more than ``TOLERANCE`` (20%) *more* positions than
  its baseline, or explores positions where the baseline has none.

``positions_explored`` counts transposition-table misses in the interned
EF kernel — it is a machine-independent proxy for solver work, and with
a single job and a cold cache it is bit-deterministic, so an exact
baseline with a small headroom band is meaningful where wall-clock time
would flake.  Big *improvements* are reported but do not fail; refresh
the baseline to lock them in:

    PYTHONPATH=src python benchmarks/bench_smoke.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Solver-heavy but CI-fast entry points; deps (prim/*) ride along.
#: E01/E02 drive full-structure games, E08 the restricted
#: (symmetry-reduced) pseudo-congruence games.
SMOKE_TASKS = ("E01", "E02", "E08")

TOLERANCE = 0.20


def run_smoke():
    """Execute the smoke subset deterministically; return the report."""
    from repro.engine import ResultCache, run_tasks
    from repro.engine.experiments import build_default_registry

    registry = build_default_registry()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache = ResultCache(root=Path(scratch), enabled=False)
        return run_tasks(
            registry, jobs=1, cache=cache, only=list(SMOKE_TASKS)
        )


def positions_by_task(report) -> dict[str, int]:
    return {
        record["task"]: record.get("solver_delta", {}).get(
            "positions_explored", 0
        )
        for record in report.records
    }


def check(report, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures = []
    errored = [r["task"] for r in report.records if r["status"] != "ok"]
    if errored:
        failures.append(f"tasks did not finish ok: {', '.join(errored)}")

    current = positions_by_task(report)
    baseline_tasks = baseline.get("positions_explored", {})
    for task, explored in sorted(current.items()):
        expected = baseline_tasks.get(task)
        if expected is None:
            failures.append(
                f"{task}: no baseline entry — run with --update and commit"
            )
        elif expected == 0:
            if explored > 0:
                failures.append(
                    f"{task}: baseline explores no positions but this run "
                    f"explored {explored}"
                )
        elif explored > expected * (1 + tolerance):
            failures.append(
                f"{task}: positions_explored regressed "
                f"{expected} -> {explored} "
                f"(+{100 * (explored / expected - 1):.0f}%, "
                f"tolerance {100 * tolerance:.0f}%)"
            )
        elif explored < expected * (1 - tolerance):
            print(
                f"note: {task} improved {expected} -> {explored}; "
                "consider --update to tighten the baseline"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/baselines.json from this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed relative increase in positions_explored",
    )
    options = parser.parse_args(argv)

    report = run_smoke()

    if options.update:
        payload = {
            "comment": (
                "Deterministic solver-effort baselines for "
                "benchmarks/bench_smoke.py (jobs=1, cache disabled). "
                "Regenerate with: PYTHONPATH=src python "
                "benchmarks/bench_smoke.py --update"
            ),
            "smoke_tasks": list(SMOKE_TASKS),
            "positions_explored": positions_by_task(report),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baselines written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"missing {BASELINE_PATH}; run with --update first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check(report, baseline, options.tolerance)
    totals = report.solver.get("totals", {})
    print(
        f"bench-smoke: {len(report.records)} tasks, "
        f"{totals.get('positions_explored', 0)} positions explored"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
