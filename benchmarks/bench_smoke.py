"""CI bench-smoke: guard solver search effort against silent regressions.

Runs a small, fast subset of the experiment DAG (``SMOKE_TASKS`` plus
their dependency closure) with ``jobs=1``, ``shards=SMOKE_SHARDS`` and
the result cache disabled, then compares each record's gated
solver-delta counters against the committed
``benchmarks/baselines.json``.  The run fails if

* any task errors, or no task executed through a shard plan (the
  smoke subset includes several sharded tasks on purpose — sharding
  silently disabled would un-gate the shard/merge path), or
* any gated counter grows more than ``TOLERANCE`` (20%) over its
  baseline, or is nonzero where the baseline has zero.

Sharded tasks report their counters on the merge record as
Σ(shard deltas) + merge delta, with duplicated stem/sweep work
rerouted to ``shard_overhead_ops`` — so the *real* gated counters are
directly comparable to a monolithic run, and the overhead counter is
gated like any other so lane duplication cannot grow unnoticed.

The gated counters are machine-independent proxies for solver work —
``positions_explored`` (EF kernel transposition misses),
``foeq_positions_explored`` (the FO[EQ] position-game solver),
the sweep-layer effort counters (``sweep_words_interned``,
``sweep_tables_extended`` vs ``sweep_tables_rebuilt`` — a rebuild where
an extension should happen means the prefix sharing broke), and the
relational-sweep counters (``sweep_relation_rows`` — total satisfying
tuples emitted, a semantic invariant; ``sweep_bitset_ops`` — bitset
mask operations, the effort proxy for the vectorised evaluation path).
With a single job and a cold cache they are bit-deterministic, so an
exact baseline with a small headroom band is meaningful where
wall-clock time would flake.  Big *improvements* are reported but do
not fail; refresh the baseline to lock them in:

    PYTHONPATH=src python benchmarks/bench_smoke.py --update

Beyond the counter baselines, :func:`check_lru` asserts the
no-eviction regime for workload-sized ``lru_cache`` sites (currently
``ef.equivalence.solver_for``): every miss must still be resident and
the memo must have produced at least some hits, so a workload growth
that silently reintroduces cache thrash fails CI instead of costing
minutes of rebuilt solver state.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Solver-heavy but CI-fast entry points; deps (prim/*) ride along.
#: E01/E02 drive full-structure games, E08 the restricted
#: (symmetry-reduced) pseudo-congruence games, E05 the batched language
#: sweep, E20 the FO[EQ] position games (its heavy FC dep rides along),
#: E16 the ψ-rewriting equivalence check (its two formula batches run
#: the bitset relation scan, so it pins ``sweep_relation_rows``), and
#: prim/relation/Mult the heaviest ψ-reduction agreement grid.
SMOKE_TASKS = ("E01", "E02", "E05", "E08", "E16", "E20", "prim/relation/Mult")

#: Intra-task shard width for the smoke run: 2 keeps the run fast while
#: exercising the planner → shards → ordered-merge path end to end.
SMOKE_SHARDS = 2

#: Solver-delta counters the gate watches, per task.
GATED_COUNTERS = (
    "positions_explored",
    "foeq_positions_explored",
    "sweep_words_interned",
    "sweep_tables_extended",
    "sweep_tables_rebuilt",
    "sweep_relation_rows",
    "sweep_bitset_ops",
    "shard_overhead_ops",
)

TOLERANCE = 0.20

#: ``cachestats`` names whose lru_cache must hold its entire workload
#: (no evictions) by the end of the smoke run, mapped to a minimum hit
#: count proving the memo actually shares work.  ``solver_for`` was
#: resized after the maxsize-512 thrash regression (2 087 misses vs 29
#: hits on the full DAG); this gate keeps the no-eviction regime pinned.
LRU_GATES = {
    "ef.equivalence.solver_for": 1,
    # The cross-call match_spans memo (bounded at 4096 after the
    # unbounded-growth fix).  The smoke subset does not drive spanner
    # evaluation, so min_hits stays 0: the gate checks registration and
    # the no-eviction regime, and tightens automatically if a spanner
    # task ever joins SMOKE_TASKS.
    "spanners.regex_formulas.match_spans": 0,
}


def run_smoke():
    """Execute the smoke subset deterministically; return the report."""
    from repro.engine import ResultCache, run_tasks
    from repro.engine.experiments import build_default_registry

    registry = build_default_registry()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache = ResultCache(root=Path(scratch), enabled=False)
        return run_tasks(
            registry,
            jobs=1,
            shards=SMOKE_SHARDS,
            cache=cache,
            only=list(SMOKE_TASKS),
        )


def counters_by_task(report) -> dict[str, dict[str, int]]:
    """Gated solver-delta counters for every record, zeros included."""
    return {
        record["task"]: {
            name: record.get("solver_delta", {}).get(name, 0)
            for name in GATED_COUNTERS
        }
        for record in report.records
    }


def check_lru(snapshot: dict) -> list[str]:
    """No-eviction gates for workload-sized ``lru_cache`` sites.

    For every cache in ``LRU_GATES``: an ``lru_cache`` inserts one entry
    per miss, so ``misses - currsize`` is the number of evictions since
    the last clear.  Any eviction means the cache no longer holds its
    workload (the maxsize-512 ``solver_for`` failure mode: heavyweight
    solvers rebuilt with their whole memo tables); too few hits means
    the memo stopped sharing work at all.
    """
    failures = []
    for name, min_hits in sorted(LRU_GATES.items()):
        info = snapshot.get(name)
        if info is None:
            failures.append(f"lru gate: cache {name!r} is not registered")
            continue
        evictions = info["misses"] - info["currsize"]
        if evictions > 0:
            failures.append(
                f"lru gate: {name} evicted {evictions} entries "
                f"(misses {info['misses']}, resident {info['currsize']}, "
                f"maxsize {info['maxsize']}) — resize it to hold the "
                "workload"
            )
        elif info["hits"] < min_hits:
            failures.append(
                f"lru gate: {name} recorded {info['hits']} hits "
                f"(< {min_hits}); the memo no longer shares work"
            )
    return failures


def check(report, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures = []
    errored = [r["task"] for r in report.records if r["status"] != "ok"]
    if errored:
        failures.append(f"tasks did not finish ok: {', '.join(errored)}")
    if not report.shards.get("tasks"):
        failures.append(
            "no task executed through a shard plan — the smoke subset "
            "must exercise the shard/merge path"
        )

    baseline_tasks = baseline.get("counters", {})
    for task, counters in sorted(counters_by_task(report).items()):
        expected_counters = baseline_tasks.get(task)
        if expected_counters is None:
            failures.append(
                f"{task}: no baseline entry — run with --update and commit"
            )
            continue
        for name, observed in counters.items():
            expected = expected_counters.get(name, 0)
            if expected == 0:
                if observed > 0:
                    failures.append(
                        f"{task}: baseline has no {name} but this run "
                        f"recorded {observed}"
                    )
            elif observed > expected * (1 + tolerance):
                failures.append(
                    f"{task}: {name} regressed "
                    f"{expected} -> {observed} "
                    f"(+{100 * (observed / expected - 1):.0f}%, "
                    f"tolerance {100 * tolerance:.0f}%)"
                )
            elif observed < expected * (1 - tolerance):
                print(
                    f"note: {task} improved {name} {expected} -> {observed}; "
                    "consider --update to tighten the baseline"
                )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/baselines.json from this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed relative increase in any gated counter",
    )
    options = parser.parse_args(argv)

    report = run_smoke()

    if options.update:
        payload = {
            "comment": (
                "Deterministic solver-effort baselines for "
                "benchmarks/bench_smoke.py (jobs=1, cache disabled). "
                "Regenerate with: PYTHONPATH=src python "
                "benchmarks/bench_smoke.py --update"
            ),
            "smoke_tasks": list(SMOKE_TASKS),
            "gated_counters": list(GATED_COUNTERS),
            "counters": counters_by_task(report),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baselines written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"missing {BASELINE_PATH}; run with --update first")
        return 2
    from repro import cachestats

    # Caches register at module import; no smoke task imports the
    # spanner layer, so pull it in explicitly to keep the "is not
    # registered" arm of check_lru meaningful for its gate.
    import repro.spanners.regex_formulas  # noqa: F401

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check(report, baseline, options.tolerance)
    failures.extend(check_lru(cachestats.snapshot()))
    totals = report.solver.get("totals", {})
    print(
        f"bench-smoke: {len(report.records)} tasks, "
        f"{totals.get('positions_explored', 0)} positions explored"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
