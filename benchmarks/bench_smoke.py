"""CI bench-smoke: guard solver search effort against silent regressions.

Runs a small, fast subset of the experiment DAG (``SMOKE_TASKS`` plus
their dependency closure) with ``jobs=1`` and the result cache disabled,
then compares each record's gated solver-delta counters against the
committed ``benchmarks/baselines.json``.  The run fails if

* any task errors, or
* any gated counter grows more than ``TOLERANCE`` (20%) over its
  baseline, or is nonzero where the baseline has zero.

The gated counters are machine-independent proxies for solver work —
``positions_explored`` (EF kernel transposition misses),
``foeq_positions_explored`` (the FO[EQ] position-game solver),
and the sweep-layer effort counters (``sweep_words_interned``,
``sweep_tables_extended`` vs ``sweep_tables_rebuilt`` — a rebuild where
an extension should happen means the prefix sharing broke).  With a
single job and a cold cache they are bit-deterministic, so an exact
baseline with a small headroom band is meaningful where wall-clock time
would flake.  Big *improvements* are reported but do not fail; refresh
the baseline to lock them in:

    PYTHONPATH=src python benchmarks/bench_smoke.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Solver-heavy but CI-fast entry points; deps (prim/*) ride along.
#: E01/E02 drive full-structure games, E08 the restricted
#: (symmetry-reduced) pseudo-congruence games, E05 the batched language
#: sweep, E20 the FO[EQ] position games (its heavy FC dep rides along).
SMOKE_TASKS = ("E01", "E02", "E05", "E08", "E20")

#: Solver-delta counters the gate watches, per task.
GATED_COUNTERS = (
    "positions_explored",
    "foeq_positions_explored",
    "sweep_words_interned",
    "sweep_tables_extended",
    "sweep_tables_rebuilt",
)

TOLERANCE = 0.20


def run_smoke():
    """Execute the smoke subset deterministically; return the report."""
    from repro.engine import ResultCache, run_tasks
    from repro.engine.experiments import build_default_registry

    registry = build_default_registry()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache = ResultCache(root=Path(scratch), enabled=False)
        return run_tasks(
            registry, jobs=1, cache=cache, only=list(SMOKE_TASKS)
        )


def counters_by_task(report) -> dict[str, dict[str, int]]:
    """Gated solver-delta counters for every record, zeros included."""
    return {
        record["task"]: {
            name: record.get("solver_delta", {}).get(name, 0)
            for name in GATED_COUNTERS
        }
        for record in report.records
    }


def check(report, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures = []
    errored = [r["task"] for r in report.records if r["status"] != "ok"]
    if errored:
        failures.append(f"tasks did not finish ok: {', '.join(errored)}")

    baseline_tasks = baseline.get("counters", {})
    for task, counters in sorted(counters_by_task(report).items()):
        expected_counters = baseline_tasks.get(task)
        if expected_counters is None:
            failures.append(
                f"{task}: no baseline entry — run with --update and commit"
            )
            continue
        for name, observed in counters.items():
            expected = expected_counters.get(name, 0)
            if expected == 0:
                if observed > 0:
                    failures.append(
                        f"{task}: baseline has no {name} but this run "
                        f"recorded {observed}"
                    )
            elif observed > expected * (1 + tolerance):
                failures.append(
                    f"{task}: {name} regressed "
                    f"{expected} -> {observed} "
                    f"(+{100 * (observed / expected - 1):.0f}%, "
                    f"tolerance {100 * tolerance:.0f}%)"
                )
            elif observed < expected * (1 - tolerance):
                print(
                    f"note: {task} improved {name} {expected} -> {observed}; "
                    "consider --update to tighten the baseline"
                )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/baselines.json from this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed relative increase in any gated counter",
    )
    options = parser.parse_args(argv)

    report = run_smoke()

    if options.update:
        payload = {
            "comment": (
                "Deterministic solver-effort baselines for "
                "benchmarks/bench_smoke.py (jobs=1, cache disabled). "
                "Regenerate with: PYTHONPATH=src python "
                "benchmarks/bench_smoke.py --update"
            ),
            "smoke_tasks": list(SMOKE_TASKS),
            "gated_counters": list(GATED_COUNTERS),
            "counters": counters_by_task(report),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baselines written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"missing {BASELINE_PATH}; run with --update first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check(report, baseline, options.tolerance)
    totals = report.solver.get("totals", {})
    print(
        f"bench-smoke: {len(report.records)} tasks, "
        f"{totals.get('positions_explored', 0)} positions explored"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
