"""E16 — Lemma 5.4: bounded regular constraints compile into pure FC.

Drives the ``E16`` engine task: for each constraint pattern Section 5
relies on — decide boundedness, rewrite into FC, and verify
⟦constraint⟧ = ⟦rewritten⟧ on every document in Σ^{≤6}; non-bounded
patterns must be rejected.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e16


def test_e16_rewriting(benchmark):
    record = benchmark(run_e16)
    print_banner(
        "E16 / Lemma 5.4",
        "every bounded regular constraint rewrites into pure FC with "
        "identical satisfying assignments (Σ^{≤6}, all documents)",
    )
    print_records(
        record["rows"], ["pattern", "bounded", "documents", "mismatches"]
    )
    print_banner(
        "E16b / Ginsburg–Spanier",
        "non-bounded regular languages are correctly rejected",
    )
    print_records(record["unbounded"], ["pattern", "bounded"])
    assert record["passed"]
    assert all(not row["bounded"] for row in record["unbounded"])
