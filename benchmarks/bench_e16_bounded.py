"""E16 — Lemma 5.4: bounded regular constraints compile into pure FC.

For each constraint pattern the paper's Section 5 relies on: decide
boundedness, decompose over Ginsburg's generators, rewrite into FC, and
verify ⟦constraint⟧ = ⟦rewritten⟧ on every document in Σ^{≤6}.
"""

from benchmarks.reporting import print_banner, print_table
from repro.fc.semantics import satisfying_assignments
from repro.fc.syntax import Var
from repro.fcreg.automata import compile_regex
from repro.fcreg.bounded import bounded_decomposition, is_bounded_regular
from repro.fcreg.constraints import in_regex
from repro.fcreg.regex import parse_regex
from repro.fcreg.rewriting import constraint_to_fc
from repro.words.generators import words_up_to

PATTERNS = ["a*", "(ba)*", "a*b*", "(abaabb)*", "(bbaaba)*", "a+", "(ab)*", "b+"]
UNBOUNDED = ["(a|b)*", "(ab|ba)*"]
X = Var("x")


def _verify_pattern(pattern: str):
    constraint = in_regex(X, pattern)
    rewritten = constraint_to_fc(constraint)
    mismatches = 0
    checked = 0
    for document in words_up_to("ab", 6):
        left = {
            s[X] for s in satisfying_assignments(document, constraint, "ab")
        }
        right = {
            s[X] for s in satisfying_assignments(document, rewritten, "ab")
        }
        checked += 1
        if left != right:
            mismatches += 1
    return checked, mismatches


def _run():
    rows = []
    for pattern in PATTERNS:
        dfa = compile_regex(parse_regex(pattern))
        bounded = is_bounded_regular(dfa)
        checked, mismatches = _verify_pattern(pattern)
        rows.append([pattern, bounded, checked, mismatches])
    return rows


def test_e16_rewriting(benchmark):
    rows = benchmark(_run)
    print_banner(
        "E16 / Lemma 5.4",
        "every bounded regular constraint rewrites into pure FC with "
        "identical satisfying assignments (Σ^{≤6}, all documents)",
    )
    print_table(["pattern", "bounded", "documents", "mismatches"], rows)
    assert all(row[1] and row[3] == 0 for row in rows)


def test_e16_unbounded_detected(benchmark):
    verdicts = benchmark(
        lambda: [
            (pattern, is_bounded_regular(compile_regex(parse_regex(pattern))))
            for pattern in UNBOUNDED
        ]
    )
    print_banner(
        "E16b / Ginsburg–Spanier",
        "non-bounded regular languages are correctly rejected",
    )
    print_table(["pattern", "bounded"], verdicts)
    assert all(not bounded for _, bounded in verdicts)
