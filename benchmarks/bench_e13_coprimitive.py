"""E13 — Lemma 4.10 + the periodicity lemma.

Drives the ``E13`` engine task: all primitive word pairs up to length 4,
checking the three-way equivalence co-primitive ⟺ Facs(uⁿ) ∩ Facs(vᵐ)
stabilises ⟺ a uniform bound r on common factor lengths exists — plus
the periodicity-lemma implication on every pair.
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e13


def test_e13_coprimitivity_equivalence(benchmark):
    record = benchmark(run_e13)
    print_banner(
        "E13 / Lemma 4.10 + periodicity lemma",
        "co-primitive ⟺ factor-intersection stabilises; common factors "
        "stay below |u| + |v| − 1",
    )
    print_table(
        [
            "primitive words",
            "co-primitive pairs",
            "conjugate pairs",
            "equivalence failures",
            "periodicity failures",
            "max bound − (|u|+|v|−2)",
        ],
        [
            [
                record["primitive_words"],
                record["coprimitive_pairs"],
                record["conjugate_pairs"],
                len(record["equivalence_failures"]),
                len(record["periodicity_failures"]),
                record["max_bound_slack"],
            ]
        ],
    )
    assert record["passed"]
    assert record["max_bound_slack"] <= 0
