"""E13 — Lemma 4.10 + the periodicity lemma.

Sweeps all primitive word pairs up to length 5 and checks the three-way
equivalence: co-primitive ⟺ Facs(uⁿ) ∩ Facs(vᵐ) stabilises ⟺ a uniform
bound r on common factor lengths exists — plus the periodicity-lemma
implication on every pair.
"""

from benchmarks.reporting import print_banner, print_table
from repro.words.conjugacy import (
    are_coprimitive,
    factor_intersection_profile,
    stable_intersection_bound,
)
from repro.words.generators import words_up_to
from repro.words.periodicity import periodicity_lemma_predicts_conjugacy
from repro.words.primitivity import is_primitive


def _sweep(max_length: int = 4):
    primitives = [
        w for w in words_up_to("ab", max_length) if is_primitive(w)
    ]
    coprimitive_pairs = conjugate_pairs = 0
    equivalence_failures = []
    periodicity_failures = []
    bound_stats = []
    for i, u in enumerate(primitives):
        for v in primitives[i:]:
            profile = factor_intersection_profile(u, v)
            coprim = are_coprimitive(u, v)
            if coprim:
                coprimitive_pairs += 1
                bound = stable_intersection_bound(u, v)
                bound_stats.append(bound - (len(u) + len(v) - 2))
            else:
                conjugate_pairs += 1
            if coprim != profile.stabilised:
                equivalence_failures.append((u, v))
            if not periodicity_lemma_predicts_conjugacy(u, v):
                periodicity_failures.append((u, v))
    return (
        len(primitives),
        coprimitive_pairs,
        conjugate_pairs,
        equivalence_failures,
        periodicity_failures,
        max(bound_stats),
    )


def test_e13_coprimitivity_equivalence(benchmark):
    (
        primitives,
        coprim,
        conj,
        eq_failures,
        period_failures,
        max_slack,
    ) = benchmark(_sweep)
    print_banner(
        "E13 / Lemma 4.10 + periodicity lemma",
        "co-primitive ⟺ factor-intersection stabilises; common factors "
        "stay below |u| + |v| − 1",
    )
    print_table(
        [
            "primitive words",
            "co-primitive pairs",
            "conjugate pairs",
            "equivalence failures",
            "periodicity failures",
            "max bound − (|u|+|v|−2)",
        ],
        [[primitives, coprim, conj, len(eq_failures), len(period_failures), max_slack]],
    )
    assert not eq_failures
    assert not period_failures
    assert max_slack <= 0
