"""E20 — FC vs FO[EQ]: the two proof routes, compared executably.

Drives the ``E20`` engine task.  The paper's motivation: the prior aⁿbⁿ
proof runs through FO[EQ] and the Feferman–Vaught theorem and "does not
generalize"; the paper's EF games for FC replace it.  The record puts
both logics side by side: expressive agreement (φ_square vs φ_ww), the
shared Example 4.5 witness, rank-for-rank separation speed, and why the
EQ relation is essential.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e20


def test_e20_fc_vs_foeq(benchmark):
    record = benchmark.pedantic(run_e20, rounds=1, iterations=1)
    print_banner(
        "E20a / FC ≡ FO[EQ]",
        "φ_square (FO[EQ], built-in EQ) = φ_ww (FC) extensionally",
    )
    agreement = record["agreement"]
    print_table(
        ["non-empty words ≤ 6", "mismatches"],
        [[agreement["checked"], agreement["mismatches"]]],
    )
    print_banner(
        "E20b / Example 4.5 in both logics",
        "a¹²b¹² ≡₂ a¹⁴b¹² holds in the FC game AND the FO[EQ] game — "
        "the two inexpressibility routes share their witnesses",
    )
    shared = record["shared_witness"]
    print_table(
        ["game", "≡₂"],
        [["FO[EQ] game (positions)", shared["foeq"]],
         ["FC game (factors)", shared["fc"]]],
    )
    print_banner(
        "E20c / rank-for-rank comparison",
        "equal expressive power ≠ equal game rank: FC's concatenation "
        "relation separates faster than the position signature",
    )
    print_records(record["rank_comparison"], ["pair", "fc_rank", "foeq_rank"])
    print_banner(
        "E20d / why EQ",
        "(ab)⁴ vs (ab)⁵: plain FO[<] cannot separate a square from a "
        "non-square at rank 2; the EQ relation separates at rank 3",
    )
    eq = record["eq_essential"]
    print_table(
        ["game", "equivalent"],
        [["FO[<] (no EQ), rank 2", eq["folt_rank2_equivalent"]],
         ["FO[EQ], rank 3", eq["foeq_rank3_equivalent"]]],
    )
    assert record["passed"]
    assert agreement["mismatches"] == 0
