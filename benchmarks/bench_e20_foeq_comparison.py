"""E20 — FC vs FO[EQ]: the two proof routes, compared executably.

The paper's motivation: the prior aⁿbⁿ proof runs through FO[EQ] and the
Feferman–Vaught theorem and "does not generalize"; the paper's EF games
for FC replace it.  This experiment puts both logics side by side:

* expressive agreement — φ_square (FO[EQ], via the built-in EQ) and φ_ww
  (FC) define the same language slice;
* the witness pair of Example 4.5 is ≡₂ in BOTH games (a^{12}b^{12} vs
  a^{14}b^{12});
* rank-for-rank the games differ: FC's concatenation relation separates
  unary powers one round earlier than the position signature.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.fc.builders import phi_ww
from repro.fc.semantics import models
from repro.foeq.builders import phi_square
from repro.foeq.games import (
    foeq_distinguishing_rank,
    foeq_equiv_k,
    folt_equiv_k,
)
from repro.foeq.semantics import p_models
from repro.words.generators import words_up_to


def _agreement(max_length: int = 6):
    mismatches = 0
    checked = 0
    for w in words_up_to("ab", max_length):
        if not w:
            continue  # FC counts ε as a square; FO[EQ]'s ε has no positions
        checked += 1
        if p_models(w, phi_square()) != models(w, phi_ww(), "ab"):
            mismatches += 1
    return checked, mismatches


def _witness_pair():
    w = "a" * 12 + "b" * 12
    v = "a" * 14 + "b" * 12
    return [
        ["FO[EQ] game (positions)", foeq_equiv_k(w, v, 2)],
        ["FC game (factors)", equiv_k(w, v, 2, "ab")],
    ]


def _rank_comparison():
    rows = []
    for w, v in (("aaaa", "aaa"), ("ab", "ba"), ("abab", "abba")):
        rows.append(
            [
                f"{w} vs {v}",
                distinguishing_rank(w, v, 4, "ab"),
                foeq_distinguishing_rank(w, v, 4),
            ]
        )
    return rows


def test_e20_expressive_agreement(benchmark):
    checked, mismatches = benchmark(_agreement)
    print_banner(
        "E20a / FC ≡ FO[EQ]",
        "φ_square (FO[EQ], built-in EQ) = φ_ww (FC) extensionally",
    )
    print_table(["non-empty words ≤ 6", "mismatches"], [[checked, mismatches]])
    assert mismatches == 0


def test_e20_shared_witness(benchmark):
    rows = benchmark(_witness_pair)
    print_banner(
        "E20b / Example 4.5 in both logics",
        "a¹²b¹² ≡₂ a¹⁴b¹² holds in the FC game AND the FO[EQ] game — "
        "the two inexpressibility routes share their witnesses",
    )
    print_table(["game", "≡₂"], rows)
    assert all(row[1] for row in rows)


def _eq_essential():
    # (ab)^4 (square) vs (ab)^5 (not): FO[<] blind at rank 2, FO[EQ] sees.
    w, v = "ab" * 4, "ab" * 5
    return [
        ["FO[<] (no EQ), rank 2", folt_equiv_k(w, v, 2)],
        ["FO[EQ], rank 3", foeq_equiv_k(w, v, 3)],
    ]


def test_e20_eq_is_essential(benchmark):
    rows = benchmark(_eq_essential)
    print_banner(
        "E20d / why EQ",
        "(ab)⁴ vs (ab)⁵: plain FO[<] cannot separate a square from a "
        "non-square at rank 2; the EQ relation separates at rank 3",
    )
    print_table(["game", "equivalent"], rows)
    assert rows[0][1] is True
    assert rows[1][1] is False


def test_e20_rank_for_rank(benchmark):
    rows = benchmark(_rank_comparison)
    print_banner(
        "E20c / rank-for-rank comparison",
        "equal expressive power ≠ equal game rank: FC's concatenation "
        "relation separates faster than the position signature",
    )
    print_table(["pair", "FC distinguishing rank", "FO[EQ] rank"], rows)
    fc_ranks = [row[1] for row in rows]
    foeq_ranks = [row[2] for row in rows]
    assert all(f <= g for f, g in zip(fc_ranks, foeq_ranks))
