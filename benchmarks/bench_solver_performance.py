"""Ablation — exact-solver engineering choices.

Two ablations called out in DESIGN.md:

* the arithmetic unary encoding vs the generic string solver on the same
  decision (a^12 ≡₂ a^14);
* the candidate-pool optimiser vs the naive evaluator on φ_fib model
  checking (the optimisation that makes E05 feasible).
"""

import pytest

from benchmarks.reporting import print_banner, print_table
from repro.ef.solver import GameSolver
from repro.ef.unary import UnaryGameSolver
from repro.fc.builders import phi_fib
from repro.fc.semantics import evaluate, evaluate_naive
from repro.fc.structures import WordStructure, word_structure
from repro.words.fibonacci import l_fib_word


def test_unary_solver(benchmark):
    def decide():
        return UnaryGameSolver(12, 14).duplicator_wins(2)

    result = benchmark(decide)
    assert result is True


def test_generic_solver(benchmark):
    def decide():
        solver = GameSolver(
            WordStructure("a" * 12, "a"), WordStructure("a" * 14, "a")
        )
        return solver.duplicator_wins(2)

    result = benchmark(decide)
    assert result is True


PHI_FIB = phi_fib()
FIB_WORD = l_fib_word(3)  # length 16


def test_optimised_model_checking(benchmark):
    structure = word_structure(FIB_WORD, "abc")
    result = benchmark(lambda: evaluate(structure, PHI_FIB, {}))
    assert result is True


def test_naive_model_checking(benchmark):
    structure = word_structure(l_fib_word(1), "abc")  # length 6: naive blows
    # up beyond this — the ablation point.
    result = benchmark(lambda: evaluate_naive(structure, PHI_FIB, {}))
    assert result is True


def test_report_envelope():
    print_banner(
        "Ablation summary",
        "unary-int encoding and candidate pools vs their naive twins",
    )
    print_table(
        ["component", "naive scope", "optimised scope"],
        [
            ["≡₂ on a^12 vs a^14", "seconds (strings)", "sub-second (ints)"],
            [
                "φ_fib model check",
                "length ≤ 10 words",
                "length ≈ 100 words",
            ],
        ],
    )
