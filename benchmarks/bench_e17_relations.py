"""E17 — Theorem 5.8: the ψ-reductions for all eight relations.

Drives the ``E17`` engine task through its real dependency fan-in: one
``prim/relation/*`` agreement check per relation R (Num_a, Add, Mult,
Scatt, Perm, Rev, Shuff, Morph_h), each verifying L(ψ_R) ∩ Σ^{≤7} =
L_target ∩ Σ^{≤7}.  Together with E15 (targets not in FC) and E16
(Lemma 5.4), this is the full Theorem 5.8 chain.
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import RELATION_NAMES, run_e17
from repro.engine.primitives import relation_agreement


def _run():
    agreements = [relation_agreement(name) for name in RELATION_NAMES]
    return run_e17(*agreements)


def test_e17_relation_reductions(benchmark):
    record = benchmark(_run)
    print_banner(
        "E17 / Theorem 5.8",
        "ψ_R defines the target language exactly (so a definable R would "
        "put a non-FC bounded language into FC[REG] — contradiction)",
    )
    print_table(
        ["relation", "target", "L(ψ) = L (Σ^{≤7})", "first mismatch", "note"],
        [
            [
                row["relation"],
                row["target_language"],
                row["reduction_agrees"],
                row["first_disagreement"] or "—",
                row["note"] or "—",
            ]
            for row in record["rows"]
        ],
    )
    assert record["passed"]
    assert all(row["reduction_agrees"] for row in record["rows"])
