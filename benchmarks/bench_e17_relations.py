"""E17 — Theorem 5.8: the ψ-reductions for all eight relations.

For each relation R (Num_a, Add, Mult, Scatt, Perm, Rev, Shuff, Morph_h):
build ψ_R with R's oracle atom and check L(ψ_R) ∩ Σ^{≤7} = L_target ∩ Σ^{≤7}.
Together with E15 (targets not in FC) and E16 (Lemma 5.4), this is the
full Theorem 5.8 chain.
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.inexpressibility import relation_report
from repro.core.relations import PSI_REDUCTIONS


def _run(max_length: int = 7):
    rows = []
    for name in sorted(PSI_REDUCTIONS):
        report = relation_report(name, max_length=max_length)
        rows.append(
            [
                name,
                report.target_language,
                report.reduction_agrees,
                report.first_disagreement or "—",
                report.note or "—",
            ]
        )
    return rows


def test_e17_relation_reductions(benchmark):
    rows = benchmark(_run)
    print_banner(
        "E17 / Theorem 5.8",
        "ψ_R defines the target language exactly (so a definable R would "
        "put a non-FC bounded language into FC[REG] — contradiction)",
    )
    print_table(
        ["relation", "target", "L(ψ) = L (Σ^{≤7})", "first mismatch", "note"],
        rows,
    )
    assert all(row[2] for row in rows)
