"""E09 / E10 / E15 — witness families for aⁿbⁿ, L₁, and all of L₁…L₆.

For every language in Lemma 4.14 (plus Example 4.5), regenerate the
paper's witness pair (member ∈ L, foil ∉ L), check memberships against
the ground-truth oracle, verify ``member ≡_k foil`` with the exact solver
(k ≤ 1), and confirm the boundedness side condition of Lemma 5.4.
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.inexpressibility import language_report
from repro.core.witnesses import WITNESS_FAMILIES


def _run():
    rows = []
    for name in sorted(WITNESS_FAMILIES):
        report = language_report(
            name, ranks=(0, 1), verify_equivalence_up_to=1
        )
        pair = report.pairs[-1]
        rows.append(
            [
                name,
                report.paper_ref,
                f"{pair.member[:14]}{'…' if len(pair.member) > 14 else ''}",
                f"{pair.foil[:14]}{'…' if len(pair.foil) > 14 else ''}",
                report.memberships_ok,
                all(report.equivalences.values()),
                report.bounded,
                report.verdict,
            ]
        )
    return rows


def test_e15_all_witness_families(benchmark):
    rows = benchmark(_run)
    print_banner(
        "E09 + E10 + E15 / Example 4.5, Prop 4.6, Lemma 4.14",
        "for each language: member ∈ L, foil ∉ L, member ≡_k foil "
        "(exact, k ≤ 1), L bounded",
    )
    print_table(
        [
            "language",
            "paper ref",
            "member (k=1)",
            "foil (k=1)",
            "∈/∉ ok",
            "≡_k ok",
            "bounded",
            "verdict",
        ],
        rows,
    )
    assert all(row[-1] == "confirmed" for row in rows)


def _k2_exact_conclusions():
    """Direct exact ≡₂ checks of the heavyweight witness conclusions.

    The paper's chain derives these from rank-4+ unary premises (beyond
    exact certification); the direct game solve needs no premise at all.
    """
    from repro.ef.equivalence import equiv_k

    pairs = [
        ("a¹²b¹² vs a¹⁴b¹² (Example 4.5)", "a" * 12 + "b" * 12, "a" * 14 + "b" * 12),
        ("(ab)¹² vs (ab)¹⁴ (Lemma 4.8)", "ab" * 12, "ab" * 14),
    ]
    return [
        [label, equiv_k(w, v, 2, "ab")] for label, w, v in pairs
    ]


def test_e15_k2_exact_conclusions(benchmark):
    rows = benchmark.pedantic(_k2_exact_conclusions, rounds=1, iterations=1)
    print_banner(
        "E15b / rank-2 exact conclusions",
        "the heavyweight witness equivalences, decided exactly at k = 2 "
        "(no premises needed — the solver checks the conclusions directly)",
    )
    print_table(["pair", "≡₂ (exact)"], rows)
    assert all(row[1] for row in rows)
