"""E09 / E10 / E15 — witness families for aⁿbⁿ, L₁, and all of L₁…L₆.

Drives the ``E15`` engine task through its real dependency fan-in: the
seven ``prim/witness/*`` language reports plus the two heavyweight
rank-2 exact equivalences (``prim/equiv/*``), exactly the DAG shape
``python -m repro run`` schedules.  E09 (Example 4.5) and E10
(Prop 4.6) are the aⁿbⁿ / L₁ rows of the same table.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e15
from repro.engine.primitives import equivalence, witness_report

FAMILY_NAMES = ["anbn", "L1", "L2", "L3", "L4", "L5", "L6"]


def _run():
    reports = {
        name: witness_report(name, ranks=[0, 1], verify_equivalence_up_to=1)
        for name in FAMILY_NAMES
    }
    heavy_anbn = equivalence("a" * 12 + "b" * 12, "a" * 14 + "b" * 12, 2, "ab")
    heavy_ab = equivalence("ab" * 12, "ab" * 14, 2, "ab")
    return run_e15(
        reports["anbn"],
        reports["L1"],
        reports["L2"],
        reports["L3"],
        reports["L4"],
        reports["L5"],
        reports["L6"],
        heavy_anbn,
        heavy_ab,
    )


def test_e15_all_witness_families(benchmark):
    record = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_banner(
        "E09 + E10 + E15 / Example 4.5, Prop 4.6, Lemma 4.14",
        "for each language: member ∈ L, foil ∉ L, member ≡_k foil "
        "(exact, k ≤ 1), L bounded",
    )
    rows = []
    for name in FAMILY_NAMES:
        report = record["families"][name]
        pair = report["pairs"][-1]
        rows.append(
            [
                name,
                report["paper_ref"],
                f"{pair['member'][:14]}{'…' if len(pair['member']) > 14 else ''}",
                f"{pair['foil'][:14]}{'…' if len(pair['foil']) > 14 else ''}",
                report["memberships_ok"],
                all(report["equivalences"].values()),
                report["bounded"],
                report["verdict"],
            ]
        )
    print_table(
        [
            "language",
            "paper ref",
            "member (k=1)",
            "foil (k=1)",
            "∈/∉ ok",
            "≡_k ok",
            "bounded",
            "verdict",
        ],
        rows,
    )
    print_banner(
        "E15b / rank-2 exact conclusions",
        "the heavyweight witness equivalences, decided exactly at k = 2 "
        "(no premises needed — the solver checks the conclusions directly)",
    )
    print_records(record["heavy_conclusions"], ["pair", "equivalent"])
    assert record["passed"]
    assert all(
        report["verdict"] == "confirmed"
        for report in record["families"].values()
    )
