#!/usr/bin/env python
"""CI smoke for the persistent store + serve daemon.

Warms an artifact store, starts ``python -m repro serve`` against it,
issues one membership and one EF-equivalence query over the wire, checks
the answers against the engine's committed results, and shuts the daemon
down cleanly.  Exits non-zero on any mismatch, daemon error, or unclean
shutdown.

The reference answers are fixed points of the reproduction:

* ``abab ∈ L(φ_ww)`` and ``aba ∉ L(φ_ww)`` (experiment E04 / Example
  2.4 machinery);
* ``a¹²b¹² ≡₂ a¹⁴b¹²`` — the committed verdict of the engine task
  ``prim/equiv/anbn-k2`` (and exactly the query the warm store is
  supposed to make cheap).

Usage: ``PYTHONPATH=src python benchmarks/serve_smoke.py``
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve.client import ServeClient  # noqa: E402

HEAVY_W = "a" * 12 + "b" * 12
HEAVY_V = "a" * 14 + "b" * 12


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if p
    )
    return env


def fail(message: str) -> int:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        spec = f"sqlite:{os.path.join(tmp, 'artifacts.sqlite')}"

        print(f"serve-smoke: warming {spec}")
        started = time.time()
        warm = subprocess.run(
            [sys.executable, "-m", "repro", "warm", "--store", spec],
            env=_env(),
            capture_output=True,
            text=True,
        )
        print(warm.stdout, end="")
        if warm.returncode != 0:
            print(warm.stderr, file=sys.stderr, end="")
            return fail(f"warm exited {warm.returncode}")
        print(f"serve-smoke: warmed in {time.time() - started:.2f}s")

        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--store",
                spec,
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announce = daemon.stdout.readline().strip()
            print(f"serve-smoke: {announce}")
            if not announce.startswith("serving on "):
                return fail(f"unexpected announce line: {announce!r}")
            port = int(announce.rsplit(":", 1)[1])

            with ServeClient(port=port, timeout=120.0) as client:
                ping = client.call("ping")
                print(f"serve-smoke: ping → {ping}")

                member = client.call(
                    "membership", word="abab", formula="ww"
                )
                print(f"serve-smoke: membership(abab, ww) → {member}")
                if member["member"] is not True:
                    return fail("abab should satisfy φ_ww")
                non_member = client.call(
                    "membership", word="aba", formula="ww"
                )
                if non_member["member"] is not False:
                    return fail("aba should not satisfy φ_ww")

                started = time.time()
                equiv = client.call(
                    "equiv", w=HEAVY_W, v=HEAVY_V, k=2, alphabet="ab"
                )
                elapsed = time.time() - started
                print(
                    f"serve-smoke: equiv(a¹²b¹², a¹⁴b¹², 2) → "
                    f"{equiv['equivalent']} in {elapsed:.3f}s (warm)"
                )
                if equiv["equivalent"] is not True:
                    return fail(
                        "a12b12 ≡₂ a14b12 expected (prim/equiv/anbn-k2)"
                    )

                stats = client.call("stats")
                hits = stats["counters"].get("store_hits", 0)
                print(f"serve-smoke: daemon store hits: {hits}")
                if hits < 1:
                    return fail("daemon never hydrated from the warm store")

                ack = client.call("shutdown")
                if ack != {"stopping": True}:
                    return fail(f"unexpected shutdown ack: {ack}")

            daemon.wait(timeout=30)
            if daemon.returncode != 0:
                return fail(f"daemon exited {daemon.returncode}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
