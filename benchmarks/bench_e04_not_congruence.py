"""E04 — Proposition 3.7: ≡_k is not a congruence.

With (p, q) = (12, 14): aᵖ ≡₂ a^q and b·aᵖ ≡₂ b·aᵖ, yet the rank-5
sentence φ_vbv separates aᵖ·b·aᵖ from a^q·b·aᵖ.  The benchmark times the
whole quadruple check (two solver equivalences + two model checks).
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.pow2 import pow2_witness
from repro.ef.equivalence import equiv_k
from repro.fc.builders import phi_vbv
from repro.fc.semantics import defines_language_member
from repro.fc.syntax import quantifier_rank


def _quadruple():
    witness = pow2_witness(2)
    u, v = witness.words()
    tail = "b" + u
    phi = phi_vbv()
    return {
        "u≡₂v": equiv_k(u, v, 2, "ab"),
        "tail≡₂tail": equiv_k(tail, tail, 2, "ab"),
        "u·tail ⊨ φ": defines_language_member(u + tail, phi, "ab"),
        "v·tail ⊨ φ": defines_language_member(v + tail, phi, "ab"),
        "qr(φ)": quantifier_rank(phi),
    }


def test_e04_not_a_congruence(benchmark):
    result = benchmark(_quadruple)
    print_banner(
        "E04 / Proposition 3.7",
        "u ≡_k v and u' ≡_k v' do NOT imply u·u' ≡_k v·v' (k ≥ 5)",
    )
    print_table(
        list(result.keys()),
        [list(result.values())],
    )
    assert result["u≡₂v"] and result["tail≡₂tail"]
    assert result["u·tail ⊨ φ"] and not result["v·tail ⊨ φ"]
    assert result["qr(φ)"] == 5
