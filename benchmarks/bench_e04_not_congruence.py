"""E04 — Proposition 3.7: ≡_k is not a congruence.

Drives the ``E04`` engine task: with (p, q) = (12, 14), aᵖ ≡₂ a^q and
b·aᵖ ≡₂ b·aᵖ, yet the rank-5 sentence φ_vbv separates aᵖ·b·aᵖ from
a^q·b·aᵖ.  The benchmark times the whole quadruple check (two solver
equivalences + two model checks).
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e04
from repro.engine.primitives import unary_minimal_pairs


def _run():
    return run_e04(unary_minimal_pairs())


def test_e04_not_a_congruence(benchmark):
    record = benchmark(_run)
    print_banner(
        "E04 / Proposition 3.7",
        "u ≡_k v and u' ≡_k v' do NOT imply u·u' ≡_k v·v' (k ≥ 5)",
    )
    print_table(
        ["u≡₂v", "tail≡₂tail", "u·tail ⊨ φ", "v·tail ⊨ φ", "qr(φ)"],
        [
            [
                record["u_equiv_v"],
                record["tail_equiv_tail"],
                record["u_tail_models_phi"],
                record["v_tail_models_phi"],
                record["quantifier_rank"],
            ]
        ],
    )
    assert record["passed"]
    assert (record["p"], record["q"]) == (12, 14)
