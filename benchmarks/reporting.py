"""Shared report-table helpers for the experiment benchmarks.

Each benchmark regenerates one experiment row-set from EXPERIMENTS.md;
``print_table`` renders it in the same layout so ``pytest benchmarks/
--benchmark-only -s`` reproduces the document's tables verbatim.
"""

from __future__ import annotations

__all__ = ["print_table", "print_banner"]


def print_banner(experiment: str, claim: str) -> None:
    """Print the experiment header."""
    print()
    print(f"=== {experiment} ===")
    print(f"claim: {claim}")


def print_table(headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
