"""Shared report helpers for the experiment benchmarks.

Each benchmark drives one experiment task from ``repro.engine`` and
renders its record in the EXPERIMENTS.md table layout, so ``pytest
benchmarks/ --benchmark-only -s`` reproduces the document's tables
verbatim.  :func:`write_engine_report` persists a machine-readable
``BENCH_engine.json`` artifact (per-task wall time, cache hit/miss
statistics, worker count) so the perf trajectory is trackable across
PRs; ``bench_engine.py`` and ``python -m repro run`` both emit it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.engine.cli import DEFAULT_REPORT_PATH, write_engine_report

__all__ = [
    "DEFAULT_REPORT_PATH",
    "bench_artifact_path",
    "dict_table",
    "print_banner",
    "print_records",
    "print_table",
    "write_engine_report",
]


def print_banner(experiment: str, claim: str) -> None:
    """Print the experiment header."""
    print()
    print(f"=== {experiment} ===")
    print(f"claim: {claim}")


def print_table(headers: list[str], rows: list[list[object]]) -> None:
    """Render an aligned text table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def dict_table(
    rows: Iterable[Mapping[str, Any]], columns: list[str] | None = None
) -> tuple[list[str], list[list[object]]]:
    """Project engine-record row dicts onto ``print_table`` inputs."""
    rows = list(rows)
    if columns is None:
        columns = list(rows[0]) if rows else []
    return columns, [[row.get(column) for column in columns] for row in rows]


def print_records(
    rows: Iterable[Mapping[str, Any]], columns: list[str] | None = None
) -> None:
    """Convenience: ``print_table`` straight from record dicts."""
    headers, body = dict_table(rows, columns)
    print_table(headers, body)


def bench_artifact_path() -> Path:
    """Where the benchmark session writes its engine artifact."""
    return Path(DEFAULT_REPORT_PATH)
