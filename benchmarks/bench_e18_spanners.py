"""E18 — the spanner side: algebra evaluation, selectability gap, and the
conclusion section's regular-intersection trick.

* evaluates a generalized-core-spanner pipeline (extract → join → ζ= →
  difference) on synthetic documents of growing length;
* shows ζ^{Num_a} wired into a regular base recognises exactly L₁ (the
  "unselectable relation ⇒ unrecognisable language" gap);
* reproduces {|w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ}.
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.relations import num_a
from repro.spanners.selectable import (
    regular_intersection_trick,
    selection_gap_language,
)
from repro.spanners.spanner import extract
from repro.words.generators import PAPER_LANGUAGES, words_up_to


def _algebra_pipeline():
    rows = []
    for n in (4, 8, 12, 16):
        document = ("aab" * n)[: n + 6]
        blocks = extract(".*x{a+}.*")
        pairs = blocks.join(extract(".*y{a+}.*"))
        equal = pairs.eq("x", "y")
        unequal = pairs - equal
        rows.append(
            [
                len(document),
                len(blocks.evaluate(document)),
                len(pairs.evaluate(document)),
                len(equal.evaluate(document)),
                len(unequal.evaluate(document)),
            ]
        )
    return rows


def _gap_language(max_length: int = 7):
    base = extract("x{a*}y{(ba)*}")
    gap = selection_gap_language(base, ("x", "y"), num_a, "ab", max_length)
    oracle = PAPER_LANGUAGES["L1"]
    expected = frozenset(
        w for w in words_up_to("ab", max_length) if w in oracle
    )
    return gap, expected


def _intersection_trick(max_length: int = 8):
    balanced = frozenset(
        w for w in words_up_to("ab", max_length)
        if w.count("a") == w.count("b")
    )
    intersection = regular_intersection_trick(
        balanced, lambda w: "ba" not in w
    )
    anbn = PAPER_LANGUAGES["anbn"]
    expected = frozenset(
        w for w in words_up_to("ab", max_length) if w in anbn
    )
    return intersection, expected


def test_e18_algebra_pipeline(benchmark):
    rows = benchmark(_algebra_pipeline)
    print_banner(
        "E18a / spanner algebra",
        "extract → ⋈ → ζ= → \\ pipeline on growing documents",
    )
    print_table(
        ["|document|", "a-blocks", "joined pairs", "ζ= kept", "difference"],
        rows,
    )
    assert all(row[3] + row[4] == row[2] for row in rows)


def test_e18_selection_gap(benchmark):
    gap, expected = benchmark(_gap_language)
    print_banner(
        "E18b / Theorem 5.8 on spanners",
        "π_∅ ζ^{Num_a}(a*-block × (ba)*-block) recognises exactly L₁",
    )
    print_table(
        ["recognised words ≤ 7", "expected (L₁)", "equal"],
        [[len(gap), len(expected), gap == expected]],
    )
    assert gap == expected


def test_e18_intersection_trick(benchmark):
    intersection, expected = benchmark(_intersection_trick)
    print_banner(
        "E18c / Conclusions",
        "{w : |w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ} (closure argument)",
    )
    print_table(
        ["intersection size ≤ 8", "aⁿbⁿ slice", "equal"],
        [[len(intersection), len(expected), intersection == expected]],
    )
    assert intersection == expected
