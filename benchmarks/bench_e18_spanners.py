"""E18 — the spanner side: algebra evaluation, selectability gap, and the
conclusion section's regular-intersection trick.

Drives the ``E18`` engine task:

* a generalized-core-spanner pipeline (extract → join → ζ= → difference)
  on synthetic documents of growing length;
* ζ^{Num_a} wired into a regular base recognises exactly L₁ (the
  "unselectable relation ⇒ unrecognisable language" gap);
* {|w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ}.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e18


def test_e18_spanner_side(benchmark):
    record = benchmark(run_e18)
    print_banner(
        "E18a / spanner algebra",
        "extract → ⋈ → ζ= → \\ pipeline on growing documents",
    )
    print_records(
        record["pipeline"],
        ["doc_length", "blocks", "joined", "kept", "difference"],
    )
    print_banner(
        "E18b / Theorem 5.8 on spanners",
        "π_∅ ζ^{Num_a}(a*-block × (ba)*-block) recognises exactly L₁",
    )
    gap = record["gap"]
    print_table(
        ["recognised words ≤ 7", "expected (L₁)", "equal"],
        [[gap["recognised"], gap["expected"], gap["equal"]]],
    )
    print_banner(
        "E18c / Conclusions",
        "{w : |w|_a = |w|_b} ∩ a*b* = {aⁿbⁿ} (closure argument)",
    )
    trick = record["intersection_trick"]
    print_table(
        ["intersection size ≤ 8", "aⁿbⁿ slice", "equal"],
        [[trick["intersection"], trick["expected"], trick["equal"]]],
    )
    assert record["passed"]
    assert gap["equal"] and trick["equal"]
