"""Ablation — regex-formula evaluation engines on growing documents.

Two exact engines produce the same span relations (property-tested):
the memoised recursive evaluator and the compiled VSet-automaton.  The
automaton's configuration-set simulation scales better on long documents
with many variables; the recursion wins on short documents (no
compilation).  This bench regenerates that crossover.
"""

from benchmarks.reporting import print_banner, print_table
from repro.spanners.regex_formulas import parse_regex_formula
from repro.spanners.vset_automata import compile_regex_formula

PATTERN = ".*x{aab|bba}.*"
FORMULA = parse_regex_formula(PATTERN)
AUTOMATON = compile_regex_formula(FORMULA)
DOCUMENT = ("aab" + "bba" + "ab") * 8  # length 64


def test_recursive_engine(benchmark):
    result = benchmark(lambda: FORMULA.match_spans(DOCUMENT))
    assert result


def test_vset_engine(benchmark):
    result = benchmark(lambda: AUTOMATON.evaluate(DOCUMENT))
    assert len(result) > 0


def test_engines_agree():
    from_formula = set(FORMULA.match_spans(DOCUMENT))
    from_automaton = {
        frozenset(row.items()) for row in AUTOMATON.evaluate(DOCUMENT)
    }
    print_banner(
        "Engine ablation",
        f"recursive vs VSet-automaton on {PATTERN!r}, |d| = {len(DOCUMENT)}",
    )
    print_table(
        ["engine", "matches"],
        [
            ["recursive (memoised)", len(from_formula)],
            ["VSet-automaton", len(from_automaton)],
        ],
    )
    assert from_formula == from_automaton
