"""E21 — distinguishing-formula synthesis (constructive Theorem 3.4).

Drives the ``E21`` engine task with its ``prim/synth`` dependency: for
every ≢₂ pair in a sweep, synthesise the separating FC(2) sentence from
Spoiler's winning strategy and verify the certificate with the
(independent) model checker — the constructive half of the Ehrenfeucht
correspondence, run wholesale.
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e21
from repro.engine.primitives import synthesize


def _run():
    return run_e21(synthesize("aaaa", "aaa", 2, "ab"))


def test_e21_synthesis_sweep(benchmark):
    record = benchmark(_run)
    k = record["k"]
    print_banner(
        "E21 / Theorem 3.4, constructive direction",
        f"every ≢_{k} pair yields a model-checker-verified FC({k}) "
        "separating sentence",
    )
    print_table(
        [
            f"≢_{k} pairs (Σ^{{≤3}})",
            "certificates synthesised",
            "certificates verified",
            "largest certificate (nodes)",
        ],
        [
            [
                record["separable"],
                record["synthesized"],
                record["verified"],
                record["max_certificate_nodes"],
            ]
        ],
    )
    spot = record["spot_certificate"]
    print_table(
        ["spot pair", "synthesised", "rank", "verified"],
        [
            [
                f"{spot['w']} vs {spot['v']}",
                spot["synthesized"],
                spot["quantifier_rank"],
                spot["verified"],
            ]
        ],
    )
    assert record["passed"]
    assert record["separable"] == record["synthesized"] == record["verified"]
