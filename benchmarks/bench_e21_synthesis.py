"""E21 — distinguishing-formula synthesis (constructive Theorem 3.4).

For every ≢_k pair in a sweep, synthesise the separating FC(k) sentence
from Spoiler's winning strategy and verify the certificate with the
(independent) model checker — the constructive half of the Ehrenfeucht
correspondence, run wholesale.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import equiv_k
from repro.ef.synthesis import SynthesisFailure, synthesize_distinguishing_sentence
from repro.fc.semantics import defines_language_member
from repro.fc.syntax import quantifier_rank, subformulas
from repro.words.generators import words_up_to

K = 2


def _sweep(max_length: int = 3):
    words = [w for w in words_up_to("ab", max_length)]
    separable = synthesized = verified = 0
    max_size = 0
    for i, w in enumerate(words):
        for v in words[i + 1 :]:
            if equiv_k(w, v, K, alphabet="ab"):
                continue
            separable += 1
            try:
                phi = synthesize_distinguishing_sentence(w, v, K, "ab")
            except SynthesisFailure:
                continue
            synthesized += 1
            size = sum(1 for _ in subformulas(phi))
            max_size = max(max_size, size)
            if (
                quantifier_rank(phi) <= K
                and defines_language_member(w, phi, "ab")
                and not defines_language_member(v, phi, "ab")
            ):
                verified += 1
    return separable, synthesized, verified, max_size


def test_e21_synthesis_sweep(benchmark):
    separable, synthesized, verified, max_size = benchmark(_sweep)
    print_banner(
        "E21 / Theorem 3.4, constructive direction",
        f"every ≢_{K} pair yields a model-checker-verified FC({K}) "
        "separating sentence",
    )
    print_table(
        [
            f"≢_{K} pairs (Σ^{{≤3}})",
            "certificates synthesised",
            "certificates verified",
            "largest certificate (nodes)",
        ],
        [[separable, synthesized, verified, max_size]],
    )
    assert separable == synthesized == verified
    assert separable > 0
