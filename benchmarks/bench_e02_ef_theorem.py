"""E02 — Theorem 3.4 (Ehrenfeucht for FC): ≡_k ⟺ FC(k)-agreement.

Cross-validates the exact game solver against a structured pool of FC(1)
sentences on every word pair over {a,b}^{≤4}: solver-equivalent pairs must
agree on every pool sentence; solver-separated pairs should (and here do)
disagree on some pool sentence.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import equiv_k
from repro.fc.enumeration import sentence_pool
from repro.fc.semantics import defines_language_member
from repro.words.generators import words_up_to

POOL = list(sentence_pool(1, "ab", max_atoms=1))
WORDS = list(words_up_to("ab", 4))


def _signature(word):
    return tuple(
        defines_language_member(word, sentence, "ab") for sentence in POOL
    )


def _sweep():
    signatures = {word: _signature(word) for word in WORDS}
    consistent = 0
    separated_confirmed = 0
    pairs = 0
    violations = []
    for i, w in enumerate(WORDS):
        for v in WORDS[i + 1 :]:
            pairs += 1
            same_sig = signatures[w] == signatures[v]
            if equiv_k(w, v, 1, alphabet="ab"):
                if same_sig:
                    consistent += 1
                else:
                    violations.append((w, v))
            else:
                if not same_sig:
                    separated_confirmed += 1
    return pairs, consistent, separated_confirmed, violations


def test_e02_ehrenfeucht_consistency(benchmark):
    pairs, consistent, separated_confirmed, violations = benchmark(_sweep)
    print_banner(
        "E02 / Theorem 3.4",
        "w ≡₁ v  ⟺  agreement on all FC(1) sentences (pool of "
        f"{len(POOL)} sentences, {len(WORDS)} words)",
    )
    print_table(
        ["pairs", "≡₁ & pool-consistent", "≢₁ & pool-separated", "violations"],
        [[pairs, consistent, separated_confirmed, len(violations)]],
    )
    assert not violations
