"""E02 — Theorem 3.4 (Ehrenfeucht for FC): ≡_k ⟺ FC(k)-agreement.

Drives the ``E02`` engine task: the exact solver is cross-validated
against a structured pool of FC(1) sentences on every word pair over
{a,b}^{≤4} — solver-equivalent pairs must agree on every pool sentence,
solver-separated pairs should (and here do) disagree on some sentence.
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e02


def test_e02_ehrenfeucht_consistency(benchmark):
    record = benchmark(run_e02)
    print_banner(
        "E02 / Theorem 3.4",
        "w ≡₁ v  ⟺  agreement on all FC(1) sentences (pool of "
        f"{record['pool_size']} sentences, {record['words']} words)",
    )
    print_table(
        ["pairs", "≡₁ & pool-consistent", "≢₁ & pool-separated", "violations"],
        [
            [
                record["pairs"],
                record["consistent"],
                record["separated_confirmed"],
                len(record["violations"]),
            ]
        ],
    )
    assert record["passed"]
    assert not record["violations"]
