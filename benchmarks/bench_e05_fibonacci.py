"""E05 — Proposition 4.1: L_fib ∈ L(FC).

Drives the ``E05`` engine task: exhaustive agreement of L(φ_fib) with
the ground-truth L_fib oracle over {a,b,c}^{≤8}, member checks on long
c·F₀·c···c·Fₙ·c words, and the 4th-power-freeness fact (Karhumäki)
behind the paper's no-pumping-lemma remark.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e05


def test_e05_fib_agreement(benchmark):
    record = benchmark(run_e05)
    print_banner(
        "E05 / Proposition 4.1", "L(φ_fib) = L_fib (exhaustive, Σ^{≤8})"
    )
    print_table(
        ["words checked", "L_fib members found", "mismatches"],
        [
            [
                record["words_checked"],
                record["members"],
                len(record["mismatches"]),
            ]
        ],
    )
    print_banner(
        "E05b / Proposition 4.1",
        "φ_fib accepts every c·F₀·c···c·Fₙ·c (model checking scales)",
    )
    print_records(record["long_members"], ["n", "length", "accepted"])
    print_banner(
        "E05c / Karhumäki",
        "Fibonacci words contain no 4th powers ⇒ FC has no pumping lemma",
    )
    print_records(record["fourth_power_free"], ["n", "fourth_power_free"])
    assert record["passed"]
    assert not record["mismatches"]
    assert record["members"] >= 2
