"""E05 — Proposition 4.1: L_fib ∈ L(FC).

Exhaustive agreement of L(φ_fib) with the ground-truth L_fib oracle over
{a,b,c}^{≤8}, member checks up to F₉, and the 4th-power-freeness fact
(Karhumäki) behind the paper's no-pumping-lemma remark.
"""

from benchmarks.reporting import print_banner, print_table
from repro.fc.builders import phi_fib
from repro.fc.semantics import defines_language_member
from repro.words.fibonacci import (
    fibonacci_word,
    is_fourth_power_free,
    is_l_fib,
    l_fib_word,
)
from repro.words.generators import words_up_to

PHI = phi_fib()


def _exhaustive(max_length: int = 8):
    mismatches = []
    total = 0
    members = 0
    for word in words_up_to("abc", max_length):
        total += 1
        predicted = defines_language_member(word, PHI, "abc")
        actual = is_l_fib(word)
        if actual:
            members += 1
        if predicted != actual:
            mismatches.append(word)
    return total, members, mismatches


def _long_members(up_to: int = 8):
    return [
        (n, len(l_fib_word(n)), defines_language_member(l_fib_word(n), PHI, "abc"))
        for n in range(up_to)
    ]


def test_e05_fib_agreement(benchmark):
    total, members, mismatches = benchmark(_exhaustive)
    print_banner(
        "E05 / Proposition 4.1", "L(φ_fib) = L_fib (exhaustive, Σ^{≤8})"
    )
    print_table(
        ["words checked", "L_fib members found", "mismatches"],
        [[total, members, len(mismatches)]],
    )
    assert not mismatches
    assert members >= 2


def test_e05_long_members(benchmark):
    rows = benchmark(_long_members)
    print_banner(
        "E05b / Proposition 4.1",
        "φ_fib accepts every c·F₀·c···c·Fₙ·c (model checking scales)",
    )
    print_table(["n", "|word|", "⊨ φ_fib"], rows)
    assert all(accepted for _, _, accepted in rows)


def test_e05_fourth_power_freeness(benchmark):
    results = benchmark(
        lambda: [
            (n, is_fourth_power_free(fibonacci_word(n))) for n in range(14)
        ]
    )
    print_banner(
        "E05c / Karhumäki",
        "Fibonacci words contain no 4th powers ⇒ FC has no pumping lemma",
    )
    print_table(["n", "F_n is 4th-power-free"], results)
    assert all(free for _, free in results)
