"""Engine meta-benchmark: scheduling + caching overhead, measured.

Runs a small experiment subset through :func:`repro.engine.run_tasks`
twice against a fresh cache — a cold pass (everything executes) and a
warm pass (everything should hit the content-addressed cache) — and
writes the machine-readable ``BENCH_engine.json`` artifact with
per-task wall times and cache statistics.
"""

import tempfile
from pathlib import Path

from benchmarks.reporting import (
    bench_artifact_path,
    print_banner,
    print_records,
    write_engine_report,
)
from repro.engine import ResultCache, run_tasks
from repro.engine.experiments import build_default_registry

SUBSET = ["E01", "E13", "E19", "E22"]


def _cold_and_warm(cache_dir: str):
    registry = build_default_registry()
    cache = ResultCache(root=Path(cache_dir))
    cold = run_tasks(registry, jobs=1, cache=cache, only=SUBSET)
    warm_cache = ResultCache(root=Path(cache_dir))
    warm = run_tasks(registry, jobs=1, cache=warm_cache, only=SUBSET)
    return cold, warm


def test_engine_cold_warm(benchmark):
    with tempfile.TemporaryDirectory() as cache_dir:
        cold, warm = benchmark.pedantic(
            _cold_and_warm, args=(cache_dir,), rounds=1, iterations=1
        )
    print_banner(
        "ENGINE / cold vs warm",
        f"subset {','.join(SUBSET)}: cold run executes, warm run replays "
        "from the content-addressed cache with identical payloads",
    )
    print_records(
        [
            {
                "task": record["task"],
                "cold": f"{record['wall_time_s']:.3f}s",
                "warm": f"{warm.record_for(record['task'])['wall_time_s']:.3f}s",
                "warm_cache": warm.record_for(record["task"])["cache"],
            }
            for record in cold.records
        ],
        ["task", "cold", "warm", "warm_cache"],
    )
    assert cold.ok and warm.ok
    assert all(record["cache"] == "hit" for record in warm.records)
    assert [r["result"] for r in cold.records] == [
        r["result"] for r in warm.records
    ]
    write_engine_report(cold, bench_artifact_path())
    assert bench_artifact_path().exists()
