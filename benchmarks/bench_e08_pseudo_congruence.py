"""E08 — Lemma 4.4 (Pseudo-Congruence), machine-checked.

Three evidence layers per instance:

1. the lemma's premises (look-up equivalences at k+r+2), where exactly
   certifiable;
2. exhaustive verification of the *composed strategy* against every
   Spoiler line of the k-round game;
3. direct exact-solver verification of the conclusion w₁w₂ ≡_k v₁v₂.
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.pseudo_congruence import PseudoCongruenceInstance

INSTANCES = [
    # (label, w1, w2, v1, v2, k, lookup_rounds or None for full slack)
    ("full slack, k=0, r=0", "a" * 12, "bb", "a" * 14, "bb", 0, None),
    ("identity, k=2", "ab", "ba", "ab", "ba", 2, None),
    ("Example 4.5 shape, k=1", "a" * 12, "bbb", "a" * 14, "bbb", 1, 2),
    ("Prop 4.6 shape, k=1", "a" * 14, "ba" * 14, "a" * 12, "ba" * 14, 1, 2),
]


def _run():
    rows = []
    for label, w1, w2, v1, v2, k, lookup in INSTANCES:
        instance = PseudoCongruenceInstance(w1, w2, v1, v2, k, "ab")
        premises = (
            instance.premises_hold()
            if lookup is None
            else instance.premises_hold(lookup)
        )
        verification = instance.verify_strategy(lookup)
        conclusion = instance.verify_conclusion()
        rows.append(
            [
                label,
                instance.r,
                premises,
                verification.survived,
                verification.lines_checked,
                conclusion,
            ]
        )
    return rows


def test_e08_pseudo_congruence(benchmark):
    rows = benchmark(_run)
    print_banner(
        "E08 / Lemma 4.4",
        "w₁ ≡_{k+r+2} v₁ ∧ w₂ ≡_{k+r+2} v₂ ⟹ w₁w₂ ≡_k v₁v₂ "
        "(strategy verified against every Spoiler line)",
    )
    print_table(
        [
            "instance",
            "r",
            "premises",
            "strategy survives",
            "spoiler lines",
            "conclusion ≡_k (exact)",
        ],
        rows,
    )
    assert all(row[2] for row in rows)
    assert all(row[3] for row in rows)
    assert all(row[5] for row in rows)
