"""E08 — Lemma 4.4 (Pseudo-Congruence), machine-checked.

Drives the ``E08`` engine task.  Three evidence layers per instance:

1. the lemma's premises (look-up equivalences at k+r+2), where exactly
   certifiable;
2. exhaustive verification of the *composed strategy* against every
   Spoiler line of the k-round game;
3. direct exact-solver verification of the conclusion w₁w₂ ≡_k v₁v₂.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e08


def test_e08_pseudo_congruence(benchmark):
    record = benchmark(run_e08)
    print_banner(
        "E08 / Lemma 4.4",
        "w₁ ≡_{k+r+2} v₁ ∧ w₂ ≡_{k+r+2} v₂ ⟹ w₁w₂ ≡_k v₁v₂ "
        "(strategy verified against every Spoiler line)",
    )
    print_records(
        record["rows"],
        [
            "instance",
            "r",
            "premises",
            "strategy_survives",
            "spoiler_lines",
            "conclusion_exact",
        ],
    )
    assert record["passed"]
    assert all(row["premises"] for row in record["rows"])
