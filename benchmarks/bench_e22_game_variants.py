"""E22 — the conclusion's game variants: existential and pebble games.

Drives the ``E22`` engine task:

* existential games (Spoiler restricted to 𝔄): the ∃⁺-preservation
  preorder, with its characteristic asymmetry on unary powers;
* pebble games: re-placing pebbles trades rank for variables — the pair
  (a¹², a¹⁴) is plain-rank-2 equivalent yet separated by 2 pebbles in 3
  rounds.
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e22


def test_e22_game_variants(benchmark):
    record = benchmark(run_e22)
    print_banner(
        "E22a / existential games",
        "the ∃⁺FC(2)-preservation preorder on unary powers "
        "(row ⪯ column): higher powers absorb lower ones, not conversely",
    )
    exponents = [row["power"] for row in record["existential"]]
    print_table(
        [""] + [f"a^{q}" for q in exponents],
        [
            [f"a^{row['power']}"]
            + ["⪯" if row["absorbs"][str(q)] else "·" for q in exponents]
            for row in record["existential"]
        ],
    )
    print_banner(
        "E22b / pebble games",
        "pebble reuse beats quantifier rank: plain-≡₂-equivalent words "
        "fall to 2 pebbles with one extra round",
    )
    print_table(
        ["pair", "pebbles", "plain ≡₂", "separated at round"],
        [
            [
                row["pair"],
                row["pebbles"],
                row["plain_equiv_2"],
                row["separated_at"] if row["separated_at"] is not None else "> 4",
            ]
            for row in record["pebble"]
        ],
    )
    assert record["passed"]


