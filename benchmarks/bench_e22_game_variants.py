"""E22 — the conclusion's game variants: existential and pebble games.

* existential games (Spoiler restricted to 𝔄): the ∃⁺-preservation
  preorder, with its characteristic asymmetry on unary powers;
* pebble games: re-placing pebbles trades rank for variables — the pair
  (a¹², a¹⁴) is plain-rank-2 equivalent yet separated by 2 pebbles in 3
  rounds.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import equiv_k
from repro.ef.existential import existential_preorder
from repro.ef.pebble import pebble_distinguishing_rounds, pebble_equiv


def _existential_matrix():
    exponents = (1, 2, 3, 5)
    rows = []
    for p in exponents:
        row = [f"a^{p}"]
        for q in exponents:
            row.append(
                "⪯" if existential_preorder("a" * p, "a" * q, 2) else "·"
            )
        rows.append(row)
    return rows


def _pebble_rows():
    rows = []
    for w, v, pebbles in (
        ("a" * 12, "a" * 14, 2),
        ("a" * 12, "a" * 14, 3),
        ("aaaa", "aaa", 2),
    ):
        plain_2 = equiv_k(w, v, 2, alphabet="a")
        separated_at = pebble_distinguishing_rounds(w, v, pebbles, 4, "a")
        rows.append(
            [
                f"a^{len(w)} vs a^{len(v)}",
                pebbles,
                plain_2,
                separated_at if separated_at is not None else "> 4",
            ]
        )
    return rows


def test_e22_existential_preorder(benchmark):
    rows = benchmark(_existential_matrix)
    print_banner(
        "E22a / existential games",
        "the ∃⁺FC(2)-preservation preorder on unary powers "
        "(row ⪯ column): higher powers absorb lower ones, not conversely",
    )
    print_table(["", "a^1", "a^2", "a^3", "a^5"], rows)
    # a^1 ⪯ everything larger; nothing larger ⪯ a^1 (at rank 2).
    assert rows[0][1:] == ["⪯", "⪯", "⪯", "⪯"]
    assert [row[1] for row in rows[1:]] == ["·", "·", "·"]


def test_e22_pebble_tradeoff(benchmark):
    rows = benchmark(_pebble_rows)
    print_banner(
        "E22b / pebble games",
        "pebble reuse beats quantifier rank: plain-≡₂-equivalent words "
        "fall to 2 pebbles with one extra round",
    )
    print_table(
        ["pair", "pebbles", "plain ≡₂", "separated at round"],
        rows,
    )
    by_key = {(row[0], row[1]): row for row in rows}
    assert by_key[("a^12 vs a^14", 2)][2] is True
    assert by_key[("a^12 vs a^14", 2)][3] == 3
