"""E03 — Lemma 3.6 (pow2): minimal unary equivalent pairs per rank.

Regenerates the witness table k ↦ minimal (p, q) with aᵖ ≡_k a^q by exact
search (the arithmetic unary solver), plus the non-semi-linearity evidence
for {2ⁿ} that powers the paper's proof.  k = 3 is reported as a bounded
negative search (no pair below 48 — see EXPERIMENTS.md).
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.pow2 import pow2_semilinearity_evidence
from repro.ef.unary import minimal_equivalent_pair


def _search():
    return {k: minimal_equivalent_pair(k, max_exponent=20) for k in (0, 1, 2)}


def test_e03_minimal_pairs(benchmark):
    table = benchmark(_search)
    print_banner(
        "E03 / Lemma 3.6",
        "for every k there exist p ≠ q with aᵖ ≡_k a^q "
        "(minimal pairs found by exact game search)",
    )
    rows = [[k, pair] for k, pair in table.items()]
    rows.append([3, "> (48, 48) — exhaustive search negative, see notes"])
    print_table(["k", "minimal (p, q)"], rows)
    assert table == {0: (1, 2), 1: (3, 4), 2: (12, 14)}


def test_e03_powers_not_semilinear(benchmark):
    evidence = benchmark(pow2_semilinearity_evidence, 512)
    print_banner(
        "E03b / Lemma 3.6 engine",
        "{2ⁿ} is not semi-linear: no eventually-periodic structure",
    )
    print_table(
        ["probe bound", "members", "eventually periodic?", "gaps increasing?"],
        [
            [
                evidence["bound"],
                len(evidence["members"]),
                evidence["eventually_periodic"],
                evidence["gaps_strictly_increasing"],
            ]
        ],
    )
    assert evidence["eventually_periodic"] is None
