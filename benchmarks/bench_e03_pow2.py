"""E03 — Lemma 3.6 (pow2): minimal unary equivalent pairs per rank.

Drives the ``E03`` engine task and its ``prim/pow2-pairs`` dependency:
the witness table k ↦ minimal (p, q) with aᵖ ≡_k a^q by exact search,
plus the non-semi-linearity evidence for {2ⁿ} that powers the paper's
proof.  k = 3 is reported as a bounded negative search (no pair below
48 — see EXPERIMENTS.md).
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e03
from repro.engine.primitives import unary_minimal_pairs


def _run():
    return run_e03(unary_minimal_pairs())


def test_e03_minimal_pairs(benchmark):
    record = benchmark(_run)
    print_banner(
        "E03 / Lemma 3.6",
        "for every k there exist p ≠ q with aᵖ ≡_k a^q "
        "(minimal pairs found by exact game search)",
    )
    rows = [
        [k, tuple(pair)] for k, pair in sorted(record["minimal_pairs"].items())
    ]
    rows.append([3, "> (48, 48) — exhaustive search negative, see notes"])
    print_table(["k", "minimal (p, q)"], rows)
    evidence = record["semilinearity"]
    print_table(
        ["probe bound", "members", "eventually periodic?", "gaps increasing?"],
        [
            [
                evidence["bound"],
                len(evidence["members"]),
                evidence["eventually_periodic"],
                evidence["gaps_strictly_increasing"],
            ]
        ],
    )
    assert record["passed"]
    assert record["minimal_pairs"] == {"0": [1, 2], "1": [3, 4], "2": [12, 14]}
    assert evidence["eventually_periodic"] is None
