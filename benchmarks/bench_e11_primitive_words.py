"""E11 — the primitive-word lemmas (4.7, A.1, D.4), sweep-checked.

Drives the ``E11`` engine task: for every primitive word up to length 5
and power 3, Lemma A.1 (occurrences only at multiples), Lemma 4.7
(unique factorisation of every factor with exp ≥ 1), and Lemma D.4
(exponent additivity defect ∈ {0,1}).
"""

from benchmarks.reporting import print_banner, print_table
from repro.engine.experiments import run_e11


def test_e11_primitive_word_lemmas(benchmark):
    record = benchmark(run_e11)
    print_banner(
        "E11 / Lemmas 4.7, A.1, D.4",
        "primitive-word structure lemmas, exhaustive over short bases",
    )
    print_table(
        [
            "primitive bases",
            "A.1 checks",
            "4.7 factorisations",
            "D.4 additivity checks",
            "failures",
        ],
        [
            [
                record["bases"],
                record["occurrence_checks"],
                record["factorization_checks"],
                record["additivity_checks"],
                len(record["failures"]),
            ]
        ],
    )
    assert record["passed"]
    assert not record["failures"]
