"""E11 — the primitive-word lemmas (4.7, A.1, D.3, D.4), sweep-checked.

For every primitive word up to length 6 and powers up to 4: Lemma A.1
(occurrences only at multiples), Lemma 4.7 (unique factorisation of every
factor with exp ≥ 1), and Lemma D.4 (exponent additivity defect ∈ {0,1}).
"""

from benchmarks.reporting import print_banner, print_table
from repro.words.factors import iter_factors
from repro.words.generators import words_up_to
from repro.words.primitivity import (
    exponent,
    exponent_additivity_defect,
    is_primitive,
    power_factorization,
    primitive_occurrences_in_power,
)


def _sweep(max_base_length: int = 5, power: int = 3):
    bases = [
        w for w in words_up_to("ab", max_base_length) if is_primitive(w)
    ]
    occurrence_checks = factorization_checks = additivity_checks = 0
    failures = []
    for base in bases:
        host = base * power
        offsets = primitive_occurrences_in_power(base, power)
        occurrence_checks += 1
        if offsets != [i * len(base) for i in range(power)]:
            failures.append(("A.1", base))
        for factor in iter_factors(host):
            if factor and exponent(base, factor) >= 1:
                factorization_checks += 1
                decomposition = power_factorization(base, factor)
                if decomposition.rebuild() != factor:
                    failures.append(("4.7", base, factor))
        for cut in range(0, len(host) + 1, 2):
            for end in range(cut, min(cut + 6, len(host)) + 1):
                u, v = host[:cut], host[cut:end]
                additivity_checks += 1
                if exponent_additivity_defect(base, u, v) not in (0, 1):
                    failures.append(("D.4", base, u, v))
    return (
        len(bases),
        occurrence_checks,
        factorization_checks,
        additivity_checks,
        failures,
    )


def test_e11_primitive_word_lemmas(benchmark):
    bases, occ, fact, add, failures = benchmark(_sweep)
    print_banner(
        "E11 / Lemmas 4.7, A.1, D.4",
        "primitive-word structure lemmas, exhaustive over short bases",
    )
    print_table(
        [
            "primitive bases",
            "A.1 checks",
            "4.7 factorisations",
            "D.4 additivity checks",
            "failures",
        ],
        [[bases, occ, fact, add, len(failures)]],
    )
    assert not failures
