"""Scaling — FC model checking vs word length.

The candidate-pool evaluator's cost on the paper's sentences as the input
word grows: φ_ww (squares), φ_no_cube (∀-heavy), φ_vbv (the rank-5
congruence witness), and φ_fib on genuine L_fib members.  These curves
back the DESIGN.md feasibility envelope.
"""

import pytest

from benchmarks.reporting import print_banner, print_table
from repro.fc.builders import phi_fib, phi_no_cube, phi_vbv, phi_ww
from repro.fc.semantics import models
from repro.words.fibonacci import l_fib_word

WW = phi_ww()
NO_CUBE = phi_no_cube()
VBV = phi_vbv()
FIB = phi_fib()


@pytest.mark.parametrize("n", [8, 16, 32])
def test_ww_scaling(benchmark, n):
    word = ("ab" * n)[:n]
    result = benchmark(lambda: models(word, WW, "ab"))
    assert result is (n % 4 == 0)  # (ab)^{n/2} with n/2 even is a square


@pytest.mark.parametrize("n", [8, 16, 32])
def test_no_cube_scaling(benchmark, n):
    word = (l_fib_word(8) * 3).replace("c", "a")[:n]
    benchmark(lambda: models(word, NO_CUBE, "ab"))


@pytest.mark.parametrize("n", [9, 17, 33])
def test_vbv_scaling(benchmark, n):
    half = (n - 1) // 2
    word = "a" * half + "b" + "a" * half
    result = benchmark(lambda: models(word, VBV, "ab"))
    assert result is True


@pytest.mark.parametrize("fib_index", [4, 6, 8])
def test_fib_scaling(benchmark, fib_index):
    word = l_fib_word(fib_index)
    result = benchmark(lambda: models(word, FIB, "abc"))
    assert result is True


def test_scaling_summary():
    print_banner(
        "FC model-checking envelope",
        "the paper's sentences on growing inputs (see timing table above)",
    )
    print_table(
        ["sentence", "rank", "tested lengths"],
        [
            ["φ_ww", 3, "8 / 16 / 32"],
            ["φ_no_cube", 3, "8 / 16 / 32"],
            ["φ_vbv", 5, "9 / 17 / 33"],
            ["φ_fib", "≈8 + chains", "12 / 33 / 96 (members F₄/F₆/F₈)"],
        ],
    )
