"""E19 — unary FC = semi-linear (the Section 3 background, measured).

Drives the ``E19`` engine task: the ≡_k equivalence classes of unary
words are eventually periodic — exactly the semi-linear shape the cited
results predict — while the {2ⁿ} length set admits no window-stable
(threshold, period) structure.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e19


def test_e19_unary_class_structure(benchmark):
    record = benchmark(run_e19)
    print_banner(
        "E19 / Section 3 background",
        "unary ≡_k classes are threshold + periodic (semi-linear shape)",
    )
    print_records(record["rows"], ["k", "classes", "threshold", "period"])
    print_banner(
        "E19b / Lemma 3.6 engine",
        "{2ⁿ} admits no window-stable (threshold, period) at bound 384",
    )
    print_table(["detected (threshold, period)"], [[record["pow2_periodicity"]]])
    assert record["passed"]
    assert record["pow2_periodicity"] is None
