"""E19 — unary FC = semi-linear (the Section 3 background, measured).

The ≡_k equivalence classes of unary words are eventually periodic —
exactly the semi-linear shape the cited results predict.  Regenerates the
class structure for k = 1, 2 and the threshold/period per rank, and shows
the {2ⁿ} length set admits no such structure.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.unary import unary_equivalence_classes
from repro.semilinear.unary import detect_robust_periodicity


def _classes():
    rows = []
    for k, bound in ((0, 8), (1, 10), (2, 18)):
        classes = unary_equivalence_classes(k, bound)
        infinite_class = max(classes, key=len)
        threshold = min(infinite_class)
        gaps = {
            b - a for a, b in zip(infinite_class, infinite_class[1:])
        }
        period = min(gaps) if gaps else 0
        rows.append([k, len(classes), threshold, period])
    return rows


def test_e19_unary_class_structure(benchmark):
    rows = benchmark(_classes)
    print_banner(
        "E19 / Section 3 background",
        "unary ≡_k classes are threshold + periodic (semi-linear shape)",
    )
    print_table(
        ["k", "#classes on probe window", "threshold", "period"],
        rows,
    )
    by_rank = {row[0]: row for row in rows}
    assert by_rank[1][2] == 3 and by_rank[1][3] == 1
    assert by_rank[2][2] == 12 and by_rank[2][3] == 2


def test_e19_powers_not_periodic(benchmark):
    is_power = lambda n: n >= 1 and (n & (n - 1)) == 0  # noqa: E731
    result = benchmark(lambda: detect_robust_periodicity(is_power, 384))
    print_banner(
        "E19b / Lemma 3.6 engine",
        "{2ⁿ} admits no window-stable (threshold, period) at bound 384",
    )
    print_table(["detected (threshold, period)"], [[result]])
    assert result is None
