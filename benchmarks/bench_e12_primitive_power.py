"""E12 — Lemma 4.8 (Primitive Power), machine-checked.

Evidence layers:

1. identity instances (p = q): the exp_w/refactoring machinery survives
   every Spoiler line at k = 2;
2. differing powers (12, 14) with the fringe-preserving look-up
   (the response pattern Claims D.1/D.2 force): survives every line of
   the 1-round game for several primitive bases;
3. the *negative control*: an under-provisioned look-up (rank-2 winning
   strategy, no fringe guarantee) breaks — the +3 slack is necessary;
4. direct exact-solver checks of the conclusions.
"""

import pytest

from benchmarks.reporting import print_banner, print_table
from repro.core.primitive_power import PrimitivePowerInstance
from repro.ef.composition import (
    FringePreservingUnaryDuplicator,
    PrimitivePowerDuplicator,
)
from repro.ef.equivalence import equiv_k, solver_for
from repro.ef.game import GameArena
from repro.ef.strategies import SolverDuplicator, exhaustively_verify_duplicator
from repro.fc.structures import word_structure

BASES = ["ab", "aab", "aba"]
P, Q = 12, 14


def _identity_instances():
    rows = []
    for base in BASES:
        instance = PrimitivePowerInstance(base, 3, 3, 2, "ab")
        result = instance.verify_strategy(lookup_rounds=0)
        rows.append([base, 3, 3, 2, result.survived, result.lines_checked])
    return rows


def _fringe_instances():
    rows = []
    for base in BASES:
        def factory(base=base):
            return PrimitivePowerDuplicator(
                base, P, Q, FringePreservingUnaryDuplicator(P, Q)
            )

        arena = GameArena(
            word_structure(base * P, "ab"),
            word_structure(base * Q, "ab"),
            1,
        )
        result = exhaustively_verify_duplicator(arena, factory)
        conclusion = equiv_k(base * P, base * Q, 1, "ab")
        rows.append(
            [base, P, Q, 1, result.survived, result.lines_checked, conclusion]
        )
    return rows


def _negative_control():
    def factory():
        lookup = SolverDuplicator(solver_for("a" * P, "a" * Q, "a"), 2)
        return PrimitivePowerDuplicator("ab", P, Q, lookup)

    arena = GameArena(
        word_structure("ab" * P, "ab"), word_structure("ab" * Q, "ab"), 1
    )
    try:
        result = exhaustively_verify_duplicator(arena, factory)
        return result.survived
    except ValueError:
        return "broke (illegal response)"


def test_e12_identity_mechanics(benchmark):
    rows = benchmark(_identity_instances)
    print_banner(
        "E12a / Lemma 4.8",
        "identity instances: exp_w look-up + Lemma 4.7 refactoring "
        "survive every Spoiler line (k = 2)",
    )
    print_table(["base", "p", "q", "k", "survives", "lines"], rows)
    assert all(row[4] for row in rows)


def test_e12_differing_powers(benchmark):
    rows = benchmark(_fringe_instances)
    print_banner(
        "E12b / Lemma 4.8",
        "baseᵖ ≡₁ base^q for (p,q) = (12,14) via the composed strategy "
        "with the fringe-preserving look-up",
    )
    print_table(
        ["base", "p", "q", "k", "survives", "lines", "conclusion (exact)"],
        rows,
    )
    assert all(row[4] and row[6] for row in rows)


def test_e12_negative_control(benchmark):
    outcome = benchmark(_negative_control)
    print_banner(
        "E12c / Lemma 4.8",
        "negative control: under-provisioned look-up (no +3 slack) fails",
    )
    print_table(["under-provisioned outcome"], [[outcome]])
    assert outcome == "broke (illegal response)"
