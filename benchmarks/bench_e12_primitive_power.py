"""E12 — Lemma 4.8 (Primitive Power), machine-checked.

Drives the ``E12`` engine task (with its ``prim/pow2-pairs``
dependency).  Evidence layers:

1. identity instances (p = q): the exp_w/refactoring machinery survives
   every Spoiler line at k = 2;
2. differing powers (12, 14) with the fringe-preserving look-up
   (the response pattern Claims D.1/D.2 force): survives every line of
   the 1-round game for several primitive bases, and the conclusion is
   confirmed exactly;
3. the *negative control*: an under-provisioned look-up (rank-2 winning
   strategy, no fringe guarantee) breaks — the +3 slack is necessary.
"""

from benchmarks.reporting import print_banner, print_records, print_table
from repro.engine.experiments import run_e12
from repro.engine.primitives import unary_minimal_pairs


def _run():
    return run_e12(unary_minimal_pairs())


def test_e12_primitive_power(benchmark):
    record = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_banner(
        "E12a / Lemma 4.8",
        "identity instances: exp_w look-up + Lemma 4.7 refactoring "
        "survive every Spoiler line (k = 2)",
    )
    print_records(record["identity"], ["base", "survives", "lines"])
    print_banner(
        "E12b / Lemma 4.8",
        f"baseᵖ ≡₁ base^q for (p,q) = ({record['p']},{record['q']}) via "
        "the composed strategy with the fringe-preserving look-up",
    )
    print_records(
        record["fringe"], ["base", "survives", "lines", "conclusion_exact"]
    )
    print_banner(
        "E12c / Lemma 4.8",
        "negative control: under-provisioned look-up (no +3 slack) fails",
    )
    print_table(["under-provisioned outcome"], [[record["negative_control"]]])
    assert record["passed"]
    assert record["negative_control"] == "broke (illegal response)"
