"""E14 — the Fooling Lemma (4.12) and Proposition 4.13.

Drives the ``E14`` engine task: fooling pairs for several
(w₁, u, w₂, v, w₃, f) configurations — including L₅'s blocks and a
non-identity injective f — with the full round-budget bookkeeping, the
membership facts, and exact ≡₀ checks.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e14


def test_e14_fooling_pairs(benchmark):
    record = benchmark(run_e14)
    print_banner(
        "E14 / Lemma 4.12 + Prop 4.13",
        "fooling pairs w₁uᵖw₂v^{f(p)}w₃ vs w₁u^q w₂v^{f(p)}w₃: member in, "
        "foil out, ≡₀ exact; budgets show the required vs certified unary rank",
    )
    print_records(
        record["rows"],
        [
            "configuration",
            "p",
            "q",
            "required_unary_rank",
            "certified_rank",
            "member_in",
            "foil_out",
            "equiv0_exact",
        ],
    )
    assert record["passed"]
    assert all(row["equiv0_exact"] for row in record["rows"])
