"""E14 — the Fooling Lemma (4.12) and Proposition 4.13.

Generates fooling pairs for several (w₁, u, w₂, v, w₃, f) configurations
— including L₅'s blocks and non-identity injective f — reporting the full
round-budget bookkeeping, the membership facts, and exact ≡₀ checks.
"""

from benchmarks.reporting import print_banner, print_table
from repro.core.fooling import fooling_pair

CONFIGS = [
    ("L5 blocks, f=id", "", "abaabb", "", "bbaaba", "", lambda p: p),
    ("aba/bba, f=id", "", "aba", "", "bba", "", lambda p: p),
    ("aba/bba, f=2p+1", "", "aba", "", "bba", "", lambda p: 2 * p + 1),
    ("with contexts", "bb", "aba", "b", "bba", "aa", lambda p: p),
]


def _run():
    rows = []
    for label, w1, u, w2, v, w3, f in CONFIGS:
        pair = fooling_pair(0, w1, u, w2, v, w3, f=f)
        language = {
            w1 + u * p + w2 + v * f(p) + w3
            for p in range(pair.q + 2)
        }
        member_in = pair.member in language
        foil_out = pair.foil not in language
        equiv0 = pair.verify_equivalence(0, "ab")
        rows.append(
            [
                label,
                (pair.p, pair.q),
                pair.budget.unary_rank,
                pair.budget.certified_rank,
                member_in,
                foil_out,
                equiv0,
            ]
        )
    return rows


def test_e14_fooling_pairs(benchmark):
    rows = benchmark(_run)
    print_banner(
        "E14 / Lemma 4.12 + Prop 4.13",
        "fooling pairs w₁uᵖw₂v^{f(p)}w₃ vs w₁u^q w₂v^{f(p)}w₃: member in, "
        "foil out, ≡₀ exact; budgets show the required vs certified unary rank",
    )
    print_table(
        [
            "configuration",
            "(p, q)",
            "required unary rank",
            "certified rank",
            "member ∈ L",
            "foil ∉ L",
            "≡₀ (exact)",
        ],
        rows,
    )
    assert all(row[4] and row[5] and row[6] for row in rows)
