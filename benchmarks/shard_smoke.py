"""CI shard-smoke: sharded execution must be bit-identical to the
committed monolithic results.

Runs the sharded experiment subset (``SHARD_TASKS``) with ``--jobs 2
--shards 2`` and the result cache disabled, then compares every result
payload — canonical JSON, byte for byte — against the committed
``BENCH_engine.json`` (which is generated monolithically).  This is the
deterministic-merge contract of the shard plans as a CI gate:

* every task in the subset must actually execute through its shard
  plan (planner → shard nodes → ordered merge), not fall back to the
  monolithic path;
* the merged result must equal the committed monolithic result
  exactly; any drift — ordering, float formatting, a lost row — fails.

Exit codes: 0 ok, 1 mismatch or task failure, 2 missing reference.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
REFERENCE_PATH = REPO_ROOT / "BENCH_engine.json"

#: Every shard-plan archetype: the i-grid round-robin (E01), the pair
#: lanes (E02), the prefix-subtree sweep (E05) and the heaviest
#: ψ-reduction agreement grid (prim/relation/Mult).
SHARD_TASKS = ("E01", "E02", "E05", "prim/relation/Mult")

JOBS = 2
SHARDS = 2


def run_sharded():
    from repro.engine import ResultCache, run_tasks
    from repro.engine.experiments import build_default_registry

    registry = build_default_registry()
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as scratch:
        cache = ResultCache(root=Path(scratch), enabled=False)
        return run_tasks(
            registry,
            jobs=JOBS,
            shards=SHARDS,
            cache=cache,
            only=list(SHARD_TASKS),
        )


def main() -> int:
    from repro.engine.spec import canonical_json

    if not REFERENCE_PATH.exists():
        print(f"missing reference report {REFERENCE_PATH}", file=sys.stderr)
        return 2
    reference = {
        record["task"]: record
        for record in json.loads(REFERENCE_PATH.read_text())["tasks"]
    }

    report = run_sharded()
    failures = []
    errored = [r["task"] for r in report.records if r["status"] != "ok"]
    if errored:
        failures.append(f"tasks did not finish ok: {', '.join(errored)}")

    sharded = report.shards.get("tasks", {})
    for task in SHARD_TASKS:
        summary = sharded.get(task)
        if summary is None or summary.get("count", 0) < 2:
            failures.append(
                f"{task}: did not execute through its shard plan "
                f"(shard summary: {summary})"
            )
    for task in SHARD_TASKS:
        if task not in reference:
            failures.append(f"{task}: no record in {REFERENCE_PATH.name}")
            continue
        got = canonical_json(report.record_for(task)["result"])
        want = canonical_json(reference[task]["result"])
        if got != want:
            failures.append(
                f"{task}: sharded result differs from the committed "
                f"monolithic result ({len(got)} vs {len(want)} bytes "
                "canonical JSON)"
            )

    width = report.shards.get("width")
    print(
        f"shard-smoke: {len(report.records)} tasks at jobs={JOBS} "
        f"shards={width}, {len(sharded)} executed sharded"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("shard-smoke: ok — sharded results bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
