"""E23 — the core-simplification direction (related work, Fagin et al.).

The paper's related-work section leans on two structural facts about
spanner representations; both are regenerated here:

* regular spanners are closed under ∪, π, ⋈ — a whole algebra tree
  compiles into ONE VSet-automaton with identical output;
* core spanners simplify to ``ζ=⋯ζ=(single automaton)`` — selections
  hoist to the top.

Rows compare tree evaluation vs the compiled single automaton on growing
documents.
"""

from benchmarks.reporting import print_banner, print_table
from repro.spanners.normal_form import compile_spanner, core_simplify
from repro.spanners.spanner import (
    EqualitySelect,
    Join,
    Project,
    SpannerUnion,
    extract,
)

REGULAR_TREE = Project(
    Join(
        SpannerUnion(extract(".*x{aa}.*"), extract(".*x{ab}.*")),
        extract(".*y{b+}.*"),
    ),
    ("x",),
)

CORE_TREE = EqualitySelect(
    Join(extract(".*x{a+}.*"), extract(".*y{a+}.*")), "x", "y"
)


def _rows(document_lengths=(8, 16, 24)):
    automaton = compile_spanner(REGULAR_TREE)
    simplified = core_simplify(CORE_TREE)
    rows = []
    for n in document_lengths:
        document = ("aab" * n)[:n]
        tree_out = {
            frozenset(r.items()) for r in REGULAR_TREE.evaluate(document)
        }
        automaton_out = {
            frozenset(r.items()) for r in automaton.evaluate(document)
        }
        core_out = {
            frozenset(r.items()) for r in CORE_TREE.evaluate(document)
        }
        simplified_out = {
            frozenset(r.items()) for r in simplified.evaluate(document)
        }
        rows.append(
            [
                n,
                len(tree_out),
                tree_out == automaton_out,
                len(core_out),
                core_out == simplified_out,
            ]
        )
    return rows, automaton.state_count(), len(simplified.selections)


def test_e23_core_simplification(benchmark):
    rows, states, selections = benchmark(_rows)
    print_banner(
        "E23 / core-simplification (Fagin et al., related work)",
        "algebra tree = ONE automaton (regular); core spanner = "
        "ζ= selections over one automaton",
    )
    print_table(
        [
            "|document|",
            "regular rows",
            "tree = automaton",
            "core rows",
            "tree = ζ=(automaton)",
        ],
        rows,
    )
    print(f"compiled automaton: {states} states; hoisted ζ= count: {selections}")
    assert all(row[2] and row[4] for row in rows)
