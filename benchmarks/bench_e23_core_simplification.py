"""E23 — the core-simplification direction (related work, Fagin et al.).

Drives the ``E23`` engine task.  Two structural facts about spanner
representations, regenerated:

* regular spanners are closed under ∪, π, ⋈ — a whole algebra tree
  compiles into ONE VSet-automaton with identical output;
* core spanners simplify to ``ζ=⋯ζ=(single automaton)`` — selections
  hoist to the top.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e23


def test_e23_core_simplification(benchmark):
    record = benchmark(run_e23)
    print_banner(
        "E23 / core-simplification (Fagin et al., related work)",
        "algebra tree = ONE automaton (regular); core spanner = "
        "ζ= selections over one automaton",
    )
    print_records(
        record["rows"],
        [
            "doc_length",
            "regular_rows",
            "tree_equals_automaton",
            "core_rows",
            "core_equals_simplified",
        ],
    )
    print(
        f"compiled automaton: {record['automaton_states']} states; "
        f"hoisted ζ= count: {record['hoisted_selections']}"
    )
    assert record["passed"]
    assert all(
        row["tree_equals_automaton"] and row["core_equals_simplified"]
        for row in record["rows"]
    )
