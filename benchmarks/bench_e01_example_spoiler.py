"""E01 — Example 3.3: Spoiler wins the 2-round game on a^{2i} vs a^{2i-1}.

Drives the ``E01`` engine task (``repro.engine.experiments.run_e01``):
the exact solver regenerates the example's claim for i = 1…5 and replays
the paper's scripted two-round Spoiler strategy against an optimal
Duplicator.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e01


def test_e01_spoiler_wins(benchmark):
    record = benchmark(run_e01)
    print_banner(
        "E01 / Example 3.3",
        "Spoiler has a 2-round winning strategy on a^{2i} vs a^{2i-1}",
    )
    print_records(
        record["rows"], ["pair", "not_equiv_2", "rank", "opening_wins"]
    )
    assert record["passed"]
    assert all(row["rank"] == 2 or row["rank"] == 1 for row in record["rows"])
