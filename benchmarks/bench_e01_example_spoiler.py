"""E01 — Example 3.3: Spoiler wins the 2-round game on a^{2i} vs a^{2i-1}.

Regenerates the example's claim for i = 1…5 with the exact solver, and
replays the paper's scripted two-round Spoiler strategy, checking it beats
an optimal Duplicator.
"""

import pytest

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import distinguishing_rank, equiv_k
from repro.ef.game import Move
from repro.ef.solver import GameSolver
from repro.fc.structures import word_structure


def _rows():
    rows = []
    for i in range(1, 6):
        w, v = "a" * (2 * i), "a" * (2 * i - 1)
        not_equiv_2 = not equiv_k(w, v, 2, alphabet="a")
        rank = distinguishing_rank(w, v, 2, alphabet="a")
        solver = GameSolver(word_structure(w, "a"), word_structure(v, "a"))
        opening_kills = (
            solver.winning_response(2, frozenset(), Move("A", w)) is None
        )
        rows.append([f"a^{2*i} vs a^{2*i-1}", not_equiv_2, rank, opening_kills])
    return rows


def test_e01_spoiler_wins(benchmark):
    rows = benchmark(_rows)
    print_banner(
        "E01 / Example 3.3",
        "Spoiler has a 2-round winning strategy on a^{2i} vs a^{2i-1}",
    )
    print_table(
        ["pair", "≢₂ (solver)", "distinguishing rank", "paper's opening move wins"],
        rows,
    )
    assert all(row[1] for row in rows)
    assert all(row[3] for row in rows)
