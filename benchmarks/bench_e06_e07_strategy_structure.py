"""E06 / E07 — Lemmas 4.2 and 4.3: structural constraints on Duplicator.

Lemma 4.2 (consistentStrats): in round r, if r + |a_r| − 1 < k then a
winning Duplicator must answer the identical factor.
Lemma 4.3 (prefixSuffix): for r ≤ k − 2, prefixes answer prefixes and
suffixes answer suffixes.

We extract optimal Duplicator responses from the solver on ≡_k pairs and
check both structural laws over every qualifying Spoiler opening.
"""

from benchmarks.reporting import print_banner, print_table
from repro.ef.equivalence import solver_for
from repro.ef.game import Move

PAIRS = [
    ("a" * 12, "a" * 14, "a", 2),
    ("a" * 12 + "b", "a" * 14 + "b", "ab", 1),
    ("abab", "abab", "ab", 3),
    ("aabba", "aabba", "ab", 3),
]


def _lemma_4_2():
    rows = []
    for w, v, alphabet, k in PAIRS:
        solver = solver_for(w, v, alphabet)
        checked = forced = 0
        for factor in sorted(solver.structure_a.universe_factors):
            # round r = 1: condition 1 + |a_1| - 1 < k  ⟺  |a_1| < k.
            if len(factor) >= k:
                continue
            response = solver.winning_response(k, frozenset(), Move("A", factor))
            if response is None:
                continue
            checked += 1
            if response == factor:
                forced += 1
        rows.append([f"{w[:6]}…({len(w)}) vs …({len(v)})", k, checked, forced])
    return rows


def _lemma_4_3():
    rows = []
    for w, v, alphabet, k in PAIRS:
        if k < 3:
            continue  # the lemma constrains rounds r ≤ k − 2 only
        solver = solver_for(w, v, alphabet)
        checked = mirrored = 0
        for factor in sorted(solver.structure_a.universe_factors):
            is_prefix = w.startswith(factor)
            is_suffix = w.endswith(factor)
            if not (is_prefix or is_suffix):
                continue
            response = solver.winning_response(k, frozenset(), Move("A", factor))
            if response is None:
                continue
            checked += 1
            ok = True
            if is_prefix and not v.startswith(response):
                ok = False
            if is_suffix and not v.endswith(response):
                ok = False
            if ok:
                mirrored += 1
        rows.append([f"{w[:6]}…({len(w)}) vs …({len(v)})", k, checked, mirrored])
    return rows


def test_e06_consistent_strategies(benchmark):
    rows = benchmark(_lemma_4_2)
    print_banner(
        "E06 / Lemma 4.2",
        "short factors (r + |a_r| − 1 < k) force identical responses",
    )
    print_table(["pair", "k", "qualifying moves", "identical responses"], rows)
    assert all(row[2] == row[3] for row in rows)


def test_e07_prefix_suffix(benchmark):
    rows = benchmark(_lemma_4_3)
    print_banner(
        "E07 / Lemma 4.3",
        "for r ≤ k−2, prefixes map to prefixes and suffixes to suffixes",
    )
    print_table(["pair", "k", "prefix/suffix moves", "mirrored"], rows)
    assert all(row[2] == row[3] for row in rows)
