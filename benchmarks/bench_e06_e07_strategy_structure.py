"""E06 / E07 — Lemmas 4.2 and 4.3: structural constraints on Duplicator.

Drives the ``E06`` and ``E07`` engine tasks: optimal Duplicator
responses extracted from the solver on ≡_k pairs must answer short
factors identically (Lemma 4.2, consistentStrats) and must map
prefixes to prefixes and suffixes to suffixes (Lemma 4.3,
prefixSuffix) over every qualifying Spoiler opening.
"""

from benchmarks.reporting import print_banner, print_records
from repro.engine.experiments import run_e06, run_e07


def test_e06_consistent_strategies(benchmark):
    record = benchmark(run_e06)
    print_banner(
        "E06 / Lemma 4.2",
        "short factors (r + |a_r| − 1 < k) force identical responses",
    )
    print_records(record["rows"], ["pair", "k", "checked", "forced"])
    assert record["passed"]
    assert all(row["checked"] == row["forced"] for row in record["rows"])


def test_e07_prefix_suffix(benchmark):
    record = benchmark(run_e07)
    print_banner(
        "E07 / Lemma 4.3",
        "for r ≤ k−2, prefixes map to prefixes and suffixes to suffixes",
    )
    print_records(record["rows"], ["pair", "k", "checked", "mirrored"])
    assert record["passed"]
    assert all(row["checked"] == row["mirrored"] for row in record["rows"])
